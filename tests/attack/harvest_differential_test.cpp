// The batched-harvest acceptance tests:
//
//  * batch ≡ per-call at campaign level — for EVERY registered scenario,
//    trial reports produced with the batched harvest fast path must equal
//    the per-call path field for field (the optimisation is
//    observation-free);
//  * ExplFrameCampaign::run() must not mutate its config (templating seed,
//    seed-derived victim key), so campaigns are re-runnable and two fresh
//    campaigns with the same seed report identically.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "attack/campaign_runner.hpp"
#include "scenario/registry.hpp"

namespace explframe::attack {
namespace {

#define EXPECT_REPORTS_EQUAL(a, b, label)                                   \
  do {                                                                      \
    EXPECT_EQ((a).cipher, (b).cipher) << (label);                           \
    EXPECT_EQ((a).template_found, (b).template_found) << (label);           \
    EXPECT_EQ((a).rows_scanned, (b).rows_scanned) << (label);               \
    EXPECT_EQ((a).flips_found, (b).flips_found) << (label);                 \
    EXPECT_EQ((a).table_index, (b).table_index) << (label);                 \
    EXPECT_EQ((a).fault_mask, (b).fault_mask) << (label);                   \
    EXPECT_EQ((a).steered, (b).steered) << (label);                         \
    EXPECT_EQ((a).planted_pfn, (b).planted_pfn) << (label);                 \
    EXPECT_EQ((a).victim_table_pfn, (b).victim_table_pfn) << (label);       \
    EXPECT_EQ((a).fault_injected, (b).fault_injected) << (label);           \
    EXPECT_EQ((a).fault_as_predicted, (b).fault_as_predicted) << (label);   \
    EXPECT_EQ((a).ciphertexts_used, (b).ciphertexts_used) << (label);       \
    EXPECT_EQ((a).residual_search, (b).residual_search) << (label);         \
    EXPECT_EQ((a).key_recovered, (b).key_recovered) << (label);             \
    EXPECT_EQ((a).recovered_key, (b).recovered_key) << (label);             \
    EXPECT_EQ((a).victim_key, (b).victim_key) << (label);                   \
    EXPECT_EQ((a).success, (b).success) << (label);                         \
    EXPECT_EQ((a).total_time, (b).total_time) << (label);                   \
  } while (0)

TEST(HarvestDifferential, BatchedAndPerCallReportsIdenticalForEveryScenario) {
  for (const scenario::Scenario& s : scenario::Registry::builtin().all()) {
    RunnerConfig cfg = s.runner_config();
    // Two trials per scenario keep the sweep fast while still covering
    // distinct seeds/machines; the batched flag is the ONLY difference.
    const std::uint32_t trials = std::min(cfg.trials, 2u);
    for (std::uint32_t trial = 0; trial < trials; ++trial) {
      RunnerConfig batched = cfg;
      batched.campaign.batched_harvest = true;
      RunnerConfig per_call = cfg;
      per_call.campaign.batched_harvest = false;
      const CampaignReport a = CampaignRunner::run_trial(batched, trial);
      const CampaignReport b = CampaignRunner::run_trial(per_call, trial);
      const std::string label = s.name + " trial " + std::to_string(trial);
      EXPECT_REPORTS_EQUAL(a, b, label);
    }
  }
}

TEST(HarvestDifferential, RunDoesNotMutateConfigAndIsRepeatable) {
  const scenario::Scenario& s = scenario::builtin_scenario("quickstart");
  RunnerConfig cfg = s.runner_config();

  const auto run_fresh = [&] {
    kernel::SystemConfig sys_cfg = cfg.system;
    sys_cfg.seed = 7;
    kernel::System sys(sys_cfg);
    CampaignConfig campaign_cfg = cfg.campaign;
    campaign_cfg.seed = 7;
    ExplFrameCampaign campaign(sys, campaign_cfg);
    const CampaignReport report = campaign.run();
    // The config must read back exactly as configured: empty victim key
    // (the derived key lives in the report only) and untouched templating
    // seed.
    EXPECT_TRUE(campaign.config().victim.key.empty());
    EXPECT_EQ(campaign.config().templating.seed, campaign_cfg.templating.seed);
    return report;
  };

  const CampaignReport first = run_fresh();
  const CampaignReport second = run_fresh();
  EXPECT_REPORTS_EQUAL(first, second, "repeat");
  // The derived victim key made it into the report even though the config
  // stayed clean.
  EXPECT_FALSE(first.victim_key.empty());
}

}  // namespace
}  // namespace explframe::attack
