#include "attack/victim.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "crypto/aes128.hpp"
#include "support/rng.hpp"

namespace explframe::attack {
namespace {

using crypto::Aes128;

kernel::SystemConfig cfg() {
  kernel::SystemConfig c;
  c.memory_bytes = 64 * kMiB;
  c.num_cpus = 1;
  c.dram.weak_cells.cells_per_mib = 0.0;
  return c;
}

const crypto::TableCipher& aes_cipher() {
  return crypto::cipher_for(crypto::CipherKind::kAes128);
}

VictimConfig victim_cfg() {
  VictimConfig v;
  v.key = crypto::random_key(aes_cipher(), 77);
  return v;
}

Aes128::Key to_aes_key(const std::vector<std::uint8_t>& bytes) {
  Aes128::Key k{};
  std::copy(bytes.begin(), bytes.end(), k.begin());
  return k;
}

Aes128::Block encrypt_block(VictimCipherService& victim,
                            const Aes128::Block& pt) {
  const auto ct = victim.encrypt(pt);
  Aes128::Block out{};
  std::copy(ct.begin(), ct.end(), out.begin());
  return out;
}

TEST(VictimCipherService, EncryptsCorrectlyFromMemoryTables) {
  kernel::System sys(cfg());
  VictimCipherService victim(sys, 0, aes_cipher(), victim_cfg());
  victim.start();
  victim.install_tables();

  Rng rng(5);
  const auto rk = Aes128::expand_key(to_aes_key(victim.config().key));
  for (int i = 0; i < 20; ++i) {
    Aes128::Block pt;
    rng.fill_bytes(pt);
    EXPECT_EQ(encrypt_block(victim, pt), Aes128::encrypt(pt, rk));
  }
  EXPECT_EQ(victim.encryptions(), 20u);
}

TEST(VictimCipherService, TableReadBackMatchesSbox) {
  kernel::System sys(cfg());
  VictimCipherService victim(sys, 0, aes_cipher(), victim_cfg());
  victim.start();
  victim.install_tables();
  const auto table = victim.read_table();
  ASSERT_EQ(table.size(), 256u);
  EXPECT_TRUE(std::equal(table.begin(), table.end(), Aes128::sbox().begin()));
  EXPECT_FALSE(victim.table_corrupted());
}

TEST(VictimCipherService, CorruptedTableDetectedAndUsed) {
  kernel::System sys(cfg());
  VictimCipherService victim(sys, 0, aes_cipher(), victim_cfg());
  victim.start();
  victim.install_tables();

  // Corrupt one table byte directly in DRAM (as a Rowhammer flip would).
  const auto phys = sys.phys_of(victim.task(), victim.table_page_va() +
                                                   victim.config().sbox_offset +
                                                   0x42);
  sys.dram().write_byte(phys, sys.dram().read_byte(phys) ^ 0x08);

  EXPECT_TRUE(victim.table_corrupted());
  auto faulty = Aes128::sbox();
  faulty[0x42] ^= 0x08;
  const auto rk = Aes128::expand_key(to_aes_key(victim.config().key));
  Rng rng(6);
  Aes128::Block pt;
  rng.fill_bytes(pt);
  EXPECT_EQ(encrypt_block(victim, pt),
            Aes128::encrypt_with_sbox(
                pt, rk, std::span<const std::uint8_t, 256>(faulty)));
}

TEST(VictimCipherService, TablePageIsFirstTouchedPage) {
  kernel::System sys(cfg());
  VictimCipherService victim(sys, 0, aes_cipher(), victim_cfg());
  victim.start();

  // Plant a known frame at the pcp head just before installation.
  kernel::Task& planter = sys.spawn("planter", 0);
  const vm::VirtAddr pv = sys.sys_mmap(planter, kPageSize);
  const std::uint8_t b = 1;
  ASSERT_TRUE(sys.mem_write(planter, pv, {&b, 1}));
  const mm::Pfn planted = sys.translate(planter, pv);
  sys.sys_munmap(planter, pv, kPageSize);

  victim.install_tables();
  EXPECT_EQ(sys.translate(victim.task(), victim.table_page_va()), planted);
}

TEST(VictimCipherService, ConfigValidation) {
  kernel::System sys(cfg());
  VictimConfig bad = victim_cfg();
  bad.sbox_offset = kPageSize - 100;  // table would not fit in the page
  EXPECT_DEATH({ VictimCipherService v(sys, 0, aes_cipher(), bad); },
               "invariant");
}

TEST(VictimCipherService, KeySizeValidation) {
  kernel::System sys(cfg());
  VictimConfig bad = victim_cfg();
  bad.key.resize(10);  // PRESENT-sized key with an AES cipher
  EXPECT_DEATH({ VictimCipherService v(sys, 0, aes_cipher(), bad); },
               "key size");
}

}  // namespace
}  // namespace explframe::attack
