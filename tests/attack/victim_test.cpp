#include "attack/victim.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "crypto/aes128.hpp"
#include "support/rng.hpp"

namespace explframe::attack {
namespace {

using crypto::Aes128;

kernel::SystemConfig cfg() {
  kernel::SystemConfig c;
  c.memory_bytes = 64 * kMiB;
  c.num_cpus = 1;
  c.dram.weak_cells.cells_per_mib = 0.0;
  return c;
}

const crypto::TableCipher& aes_cipher() {
  return crypto::cipher_for(crypto::CipherKind::kAes128);
}

VictimConfig victim_cfg() {
  VictimConfig v;
  v.key = crypto::random_key(aes_cipher(), 77);
  return v;
}

Aes128::Key to_aes_key(const std::vector<std::uint8_t>& bytes) {
  Aes128::Key k{};
  std::copy(bytes.begin(), bytes.end(), k.begin());
  return k;
}

Aes128::Block encrypt_block(VictimCipherService& victim,
                            const Aes128::Block& pt) {
  const auto ct = victim.encrypt(pt);
  Aes128::Block out{};
  std::copy(ct.begin(), ct.end(), out.begin());
  return out;
}

TEST(VictimCipherService, EncryptsCorrectlyFromMemoryTables) {
  kernel::System sys(cfg());
  VictimCipherService victim(sys, 0, aes_cipher(), victim_cfg());
  victim.start();
  victim.install_tables();

  Rng rng(5);
  const auto rk = Aes128::expand_key(to_aes_key(victim.config().key));
  for (int i = 0; i < 20; ++i) {
    Aes128::Block pt;
    rng.fill_bytes(pt);
    EXPECT_EQ(encrypt_block(victim, pt), Aes128::encrypt(pt, rk));
  }
  EXPECT_EQ(victim.encryptions(), 20u);
}

TEST(VictimCipherService, TableReadBackMatchesSbox) {
  kernel::System sys(cfg());
  VictimCipherService victim(sys, 0, aes_cipher(), victim_cfg());
  victim.start();
  victim.install_tables();
  const auto table = victim.read_table();
  ASSERT_EQ(table.size(), 256u);
  EXPECT_TRUE(std::equal(table.begin(), table.end(), Aes128::sbox().begin()));
  EXPECT_FALSE(victim.table_corrupted());
}

TEST(VictimCipherService, CorruptedTableDetectedAndUsed) {
  kernel::System sys(cfg());
  VictimCipherService victim(sys, 0, aes_cipher(), victim_cfg());
  victim.start();
  victim.install_tables();

  // Corrupt one table byte directly in DRAM (as a Rowhammer flip would).
  const auto phys = sys.phys_of(victim.task(), victim.table_page_va() +
                                                   victim.config().sbox_offset +
                                                   0x42);
  sys.dram().write_byte(phys, sys.dram().read_byte(phys) ^ 0x08);

  EXPECT_TRUE(victim.table_corrupted());
  auto faulty = Aes128::sbox();
  faulty[0x42] ^= 0x08;
  const auto rk = Aes128::expand_key(to_aes_key(victim.config().key));
  Rng rng(6);
  Aes128::Block pt;
  rng.fill_bytes(pt);
  EXPECT_EQ(encrypt_block(victim, pt),
            Aes128::encrypt_with_sbox(
                pt, rk, std::span<const std::uint8_t, 256>(faulty)));
}

TEST(VictimCipherService, TablePageIsFirstTouchedPage) {
  kernel::System sys(cfg());
  VictimCipherService victim(sys, 0, aes_cipher(), victim_cfg());
  victim.start();

  // Plant a known frame at the pcp head just before installation.
  kernel::Task& planter = sys.spawn("planter", 0);
  const vm::VirtAddr pv = sys.sys_mmap(planter, kPageSize);
  const std::uint8_t b = 1;
  ASSERT_TRUE(sys.mem_write(planter, pv, {&b, 1}));
  const mm::Pfn planted = sys.translate(planter, pv);
  sys.sys_munmap(planter, pv, kPageSize);

  victim.install_tables();
  EXPECT_EQ(sys.translate(victim.task(), victim.table_page_va()), planted);
}

TEST(VictimCipherService, ConfigValidation) {
  kernel::System sys(cfg());
  VictimConfig bad = victim_cfg();
  bad.sbox_offset = kPageSize - 100;  // table would not fit in the page
  EXPECT_DEATH({ VictimCipherService v(sys, 0, aes_cipher(), bad); },
               "invariant");
}

TEST(VictimCipherService, KeySizeValidation) {
  kernel::System sys(cfg());
  VictimConfig bad = victim_cfg();
  bad.key.resize(10);  // PRESENT-sized key with an AES cipher
  EXPECT_DEATH({ VictimCipherService v(sys, 0, aes_cipher(), bad); },
               "key size");
}

TEST(VictimCipherService, EncryptBatchMatchesPerCallOverRandomSplits) {
  // Two identical victims on identical systems, fed the same plaintext
  // stream: one per-call, one batched with random chunk sizes. The
  // ciphertext streams must be byte-identical and the encryption counter
  // must advance the same way.
  for (const auto kind :
       {crypto::CipherKind::kAes128, crypto::CipherKind::kPresent80}) {
    const crypto::TableCipher& cipher = crypto::cipher_for(kind);
    VictimConfig vc;
    vc.key = crypto::random_key(cipher, 123);
    kernel::System sys_a(cfg()), sys_b(cfg());
    VictimCipherService scalar_victim(sys_a, 0, cipher, vc);
    VictimCipherService batch_victim(sys_b, 0, cipher, vc);
    for (auto* v : {&scalar_victim, &batch_victim}) {
      v->start();
      v->install_tables();
    }

    const std::size_t block = cipher.block_size();
    constexpr std::size_t kBlocks = 300;
    std::vector<std::uint8_t> pts(kBlocks * block);
    Rng rng(9);
    rng.fill_bytes(pts);

    std::vector<std::uint8_t> scalar(kBlocks * block);
    for (std::size_t i = 0; i < kBlocks; ++i)
      scalar_victim.encrypt({pts.data() + i * block, block},
                            {scalar.data() + i * block, block});

    std::vector<std::uint8_t> batched(kBlocks * block);
    Rng split_rng(10);
    std::size_t off = 0;
    while (off < kBlocks) {
      const std::size_t n =
          std::min<std::size_t>(1 + split_rng.uniform(40), kBlocks - off);
      batch_victim.encrypt_batch({pts.data() + off * block, n * block},
                                 {batched.data() + off * block, n * block});
      off += n;
    }

    EXPECT_EQ(scalar, batched) << crypto::to_string(kind);
    EXPECT_EQ(batch_victim.encryptions(), scalar_victim.encryptions());
  }
}

TEST(VictimCipherService, EpochInvalidationMidHarvestRefreshesSnapshot) {
  // Corrupt the stored table between chunks (as the re-hammer or a noise
  // task's write would). The batched path must notice through the memory
  // epoch, drop its snapshot, and keep emitting exactly the per-call
  // stream — before AND after the corruption.
  const crypto::TableCipher& cipher = aes_cipher();
  VictimConfig vc = victim_cfg();
  kernel::System sys_a(cfg()), sys_b(cfg());
  VictimCipherService scalar_victim(sys_a, 0, cipher, vc);
  VictimCipherService batch_victim(sys_b, 0, cipher, vc);
  for (auto* v : {&scalar_victim, &batch_victim}) {
    v->start();
    v->install_tables();
  }

  constexpr std::size_t kBlocks = 96;  // corrupt after block 48
  std::vector<std::uint8_t> pts(kBlocks * 16);
  Rng rng(11);
  rng.fill_bytes(pts);

  const auto corrupt = [&](kernel::System& sys, VictimCipherService& victim) {
    const auto phys = sys.phys_of(
        victim.task(),
        victim.table_page_va() + victim.config().sbox_offset + 0x51);
    sys.dram().inject_flip(phys, 3);
  };

  std::vector<std::uint8_t> scalar(kBlocks * 16);
  for (std::size_t i = 0; i < kBlocks; ++i) {
    if (i == 48) corrupt(sys_a, scalar_victim);
    scalar_victim.encrypt({pts.data() + i * 16, 16},
                          {scalar.data() + i * 16, 16});
  }

  std::vector<std::uint8_t> batched(kBlocks * 16);
  batch_victim.encrypt_batch({pts.data(), 48 * 16}, {batched.data(), 48 * 16});
  corrupt(sys_b, batch_victim);
  batch_victim.encrypt_batch({pts.data() + 48 * 16, 48 * 16},
                             {batched.data() + 48 * 16, 48 * 16});

  EXPECT_TRUE(batch_victim.table_corrupted());
  EXPECT_EQ(scalar, batched);
  // Sanity: the corruption actually changed the stream (the second half
  // differs from what an uncorrupted victim would emit).
  kernel::System sys_c(cfg());
  VictimCipherService clean(sys_c, 0, cipher, vc);
  clean.start();
  clean.install_tables();
  std::vector<std::uint8_t> clean_ct(kBlocks * 16);
  clean.encrypt_batch(pts, clean_ct);
  EXPECT_NE(batched, clean_ct);
  EXPECT_TRUE(std::equal(batched.begin(), batched.begin() + 48 * 16,
                         clean_ct.begin()));
}

}  // namespace
}  // namespace explframe::attack
