#include "attack/victim.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace explframe::attack {
namespace {

using crypto::Aes128;

kernel::SystemConfig cfg() {
  kernel::SystemConfig c;
  c.memory_bytes = 64 * kMiB;
  c.num_cpus = 1;
  c.dram.weak_cells.cells_per_mib = 0.0;
  return c;
}

VictimConfig victim_cfg() {
  VictimConfig v;
  Rng rng(77);
  rng.fill_bytes(v.key);
  return v;
}

TEST(VictimAesService, EncryptsCorrectlyFromMemoryTables) {
  kernel::System sys(cfg());
  VictimAesService victim(sys, 0, victim_cfg());
  victim.start();
  victim.install_tables();

  Rng rng(5);
  const auto rk = Aes128::expand_key(victim.config().key);
  for (int i = 0; i < 20; ++i) {
    Aes128::Block pt;
    rng.fill_bytes(pt);
    EXPECT_EQ(victim.encrypt(pt), Aes128::encrypt(pt, rk));
  }
  EXPECT_EQ(victim.encryptions(), 20u);
}

TEST(VictimAesService, TableReadBackMatchesSbox) {
  kernel::System sys(cfg());
  VictimAesService victim(sys, 0, victim_cfg());
  victim.start();
  victim.install_tables();
  EXPECT_EQ(victim.read_table(), Aes128::sbox());
  EXPECT_FALSE(victim.table_corrupted());
}

TEST(VictimAesService, CorruptedTableDetectedAndUsed) {
  kernel::System sys(cfg());
  VictimAesService victim(sys, 0, victim_cfg());
  victim.start();
  victim.install_tables();

  // Corrupt one table byte directly in DRAM (as a Rowhammer flip would).
  const auto phys = sys.phys_of(victim.task(), victim.table_page_va() +
                                                   victim.config().sbox_offset +
                                                   0x42);
  sys.dram().write_byte(phys, sys.dram().read_byte(phys) ^ 0x08);

  EXPECT_TRUE(victim.table_corrupted());
  auto faulty = Aes128::sbox();
  faulty[0x42] ^= 0x08;
  const auto rk = Aes128::expand_key(victim.config().key);
  Rng rng(6);
  Aes128::Block pt;
  rng.fill_bytes(pt);
  EXPECT_EQ(victim.encrypt(pt),
            Aes128::encrypt_with_sbox(
                pt, rk, std::span<const std::uint8_t, 256>(faulty)));
}

TEST(VictimAesService, TablePageIsFirstTouchedPage) {
  kernel::System sys(cfg());
  VictimAesService victim(sys, 0, victim_cfg());
  victim.start();

  // Plant a known frame at the pcp head just before installation.
  kernel::Task& planter = sys.spawn("planter", 0);
  const vm::VirtAddr pv = sys.sys_mmap(planter, kPageSize);
  const std::uint8_t b = 1;
  ASSERT_TRUE(sys.mem_write(planter, pv, {&b, 1}));
  const mm::Pfn planted = sys.translate(planter, pv);
  sys.sys_munmap(planter, pv, kPageSize);

  victim.install_tables();
  EXPECT_EQ(sys.translate(victim.task(), victim.table_page_va()), planted);
}

TEST(VictimAesService, ConfigValidation) {
  kernel::System sys(cfg());
  VictimConfig bad = victim_cfg();
  bad.sbox_offset = kPageSize - 100;  // table would not fit in the page
  EXPECT_DEATH({ VictimAesService v(sys, 0, bad); }, "invariant");
}

}  // namespace
}  // namespace explframe::attack
