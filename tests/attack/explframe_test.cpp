#include "attack/explframe.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace explframe::attack {
namespace {

kernel::SystemConfig attack_system_cfg(std::uint64_t seed) {
  kernel::SystemConfig c;
  c.memory_bytes = 64 * kMiB;
  c.num_cpus = 2;
  c.dram.weak_cells.cells_per_mib = 128.0;
  c.dram.weak_cells.threshold_log_mean = 10.4;
  c.dram.weak_cells.threshold_min = 25'000;
  c.dram.weak_cells.threshold_max = 60'000;
  c.dram.data_pattern_sensitivity = false;
  c.seed = seed;
  return c;
}

ExplFrameConfig attack_cfg(std::uint64_t seed) {
  ExplFrameConfig cfg;
  cfg.templating.buffer_bytes = 4 * kMiB;
  cfg.templating.hammer_iterations = 100'000;
  cfg.templating.both_polarities = true;
  Rng rng(seed * 1000 + 1);
  rng.fill_bytes(cfg.victim.key);
  cfg.ciphertext_budget = 8000;
  cfg.seed = seed;
  return cfg;
}

TEST(ExplFrameAttack, EndToEndKeyRecovery) {
  // Deterministic: with this memory seed the template phase finds a usable
  // flip and every later phase must succeed.
  bool any_success = false;
  for (std::uint64_t seed = 1; seed <= 4 && !any_success; ++seed) {
    kernel::System sys(attack_system_cfg(seed));
    ExplFrameAttack attack(sys, attack_cfg(seed));
    const auto report = attack.run();
    if (!report.template_found) continue;  // unlucky weak-cell layout
    EXPECT_TRUE(report.steered) << "seed " << seed;
    EXPECT_TRUE(report.fault_injected) << "seed " << seed;
    if (report.success) {
      any_success = true;
      EXPECT_EQ(report.recovered_key, attack_cfg(seed).victim.key);
      EXPECT_GT(report.ciphertexts_used, 0u);
      EXPECT_EQ(report.failure_stage(), "none");
    }
  }
  EXPECT_TRUE(any_success);
}

TEST(ExplFrameAttack, SteeringIsExactWithoutNoise) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    kernel::System sys(attack_system_cfg(seed));
    ExplFrameAttack attack(sys, attack_cfg(seed));
    const auto report = attack.run();
    if (!report.template_found) continue;
    // No contention: the planted frame must reach the victim's table page.
    EXPECT_EQ(report.victim_table_pfn, report.planted_pfn) << "seed " << seed;
    return;
  }
  GTEST_FAIL() << "no seed produced a usable template";
}

TEST(ExplFrameAttack, ReportFailureStages) {
  ExplFrameReport r;
  EXPECT_EQ(r.failure_stage(), "templating");
  r.template_found = true;
  EXPECT_EQ(r.failure_stage(), "steering");
  r.steered = true;
  EXPECT_EQ(r.failure_stage(), "fault-injection");
  r.fault_injected = true;
  EXPECT_EQ(r.failure_stage(), "key-recovery");
  r.key_recovered = true;
  EXPECT_EQ(r.failure_stage(), "key-mismatch");
  r.success = true;
  EXPECT_EQ(r.failure_stage(), "none");
}

TEST(ExplFrameAttack, CrossCpuNoiseDoesNotStealFrame) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    kernel::System sys(attack_system_cfg(seed));
    ExplFrameConfig cfg = attack_cfg(seed);
    cfg.noise_ops = 50;
    cfg.noise_cpu = 1;  // noise on the other CPU: different pcp cache
    ExplFrameAttack attack(sys, cfg);
    const auto report = attack.run();
    if (!report.template_found) continue;
    EXPECT_TRUE(report.steered) << "seed " << seed;
    return;
  }
  GTEST_FAIL() << "no seed produced a usable template";
}

TEST(ExplFrameAttack, SameCpuNoiseCanStealFrame) {
  // With heavy same-CPU noise between plant and victim allocation the
  // planted frame is usually consumed by the noise process instead.
  std::size_t attempted = 0;
  std::size_t steered = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    kernel::System sys(attack_system_cfg(seed));
    ExplFrameConfig cfg = attack_cfg(seed);
    cfg.noise_ops = 200;
    cfg.noise_cpu = 0;  // same CPU as the attack
    ExplFrameAttack attack(sys, cfg);
    const auto report = attack.run();
    if (!report.template_found) continue;
    ++attempted;
    steered += report.steered ? 1 : 0;
  }
  ASSERT_GT(attempted, 0u);
  EXPECT_LT(steered, attempted);  // noise must spoil at least one run
}

}  // namespace
}  // namespace explframe::attack
