// The AES-128 end-to-end campaign — what the old ExplFrameAttack tests
// covered, now through the unified ExplFrameCampaign.
#include <gtest/gtest.h>

#include "attack/campaign.hpp"
#include "support/rng.hpp"

namespace explframe::attack {
namespace {

kernel::SystemConfig attack_system_cfg(std::uint64_t seed) {
  kernel::SystemConfig c;
  c.memory_bytes = 64 * kMiB;
  c.num_cpus = 2;
  c.dram.weak_cells.cells_per_mib = 128.0;
  c.dram.weak_cells.threshold_log_mean = 10.4;
  c.dram.weak_cells.threshold_min = 25'000;
  c.dram.weak_cells.threshold_max = 60'000;
  c.dram.data_pattern_sensitivity = false;
  c.seed = seed;
  return c;
}

CampaignConfig attack_cfg(std::uint64_t seed) {
  CampaignConfig cfg;
  cfg.cipher = crypto::CipherKind::kAes128;
  cfg.templating.buffer_bytes = 4 * kMiB;
  cfg.templating.hammer_iterations = 100'000;
  cfg.templating.both_polarities = true;
  cfg.ciphertext_budget = 8000;
  cfg.seed = seed;
  return cfg;
}

TEST(ExplFrameCampaignAes, EndToEndKeyRecovery) {
  // Deterministic: with this memory seed the template phase finds a usable
  // flip and every later phase must succeed.
  bool any_success = false;
  for (std::uint64_t seed = 1; seed <= 4 && !any_success; ++seed) {
    kernel::System sys(attack_system_cfg(seed));
    // An explicit key makes the success check independent of the
    // campaign's own victim-key bookkeeping.
    CampaignConfig cfg = attack_cfg(seed);
    cfg.victim.key = crypto::random_key(
        crypto::cipher_for(cfg.cipher), seed * 1000 + 1);
    ExplFrameCampaign attack(sys, cfg);
    const auto report = attack.run();
    if (!report.template_found) continue;  // unlucky weak-cell layout
    EXPECT_TRUE(report.steered) << "seed " << seed;
    EXPECT_TRUE(report.fault_injected) << "seed " << seed;
    if (report.success) {
      any_success = true;
      EXPECT_EQ(report.recovered_key, cfg.victim.key);
      EXPECT_EQ(report.recovered_key.size(), 16u);
      EXPECT_GT(report.ciphertexts_used, 0u);
      EXPECT_EQ(report.failure_stage(), "none");
    }
  }
  EXPECT_TRUE(any_success);
}

TEST(ExplFrameCampaignAes, SteeringIsExactWithoutNoise) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    kernel::System sys(attack_system_cfg(seed));
    ExplFrameCampaign attack(sys, attack_cfg(seed));
    const auto report = attack.run();
    if (!report.template_found) continue;
    // No contention: the planted frame must reach the victim's table page.
    EXPECT_EQ(report.victim_table_pfn, report.planted_pfn) << "seed " << seed;
    return;
  }
  GTEST_FAIL() << "no seed produced a usable template";
}

TEST(ExplFrameCampaignAes, ReportFailureStages) {
  CampaignReport r;
  EXPECT_EQ(r.failure_stage(), "templating");
  r.template_found = true;
  EXPECT_EQ(r.failure_stage(), "steering");
  r.steered = true;
  EXPECT_EQ(r.failure_stage(), "fault-injection");
  r.fault_injected = true;
  EXPECT_EQ(r.failure_stage(), "key-recovery");
  r.key_recovered = true;
  EXPECT_EQ(r.failure_stage(), "key-mismatch");
  r.success = true;
  EXPECT_EQ(r.failure_stage(), "none");
}

TEST(ExplFrameCampaignAes, ExplicitVictimKeyIsUsed) {
  // A key supplied in the config must survive seed derivation untouched.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    kernel::System sys(attack_system_cfg(seed));
    CampaignConfig cfg = attack_cfg(seed);
    cfg.victim.key.assign(16, 0xA7);
    ExplFrameCampaign attack(sys, cfg);
    const auto report = attack.run();
    EXPECT_EQ(report.victim_key, cfg.victim.key);
    if (!report.success) continue;
    EXPECT_EQ(report.recovered_key, cfg.victim.key);
    return;
  }
  GTEST_FAIL() << "no seed recovered the explicit key";
}

TEST(ExplFrameCampaignAes, CrossCpuNoiseDoesNotStealFrame) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    kernel::System sys(attack_system_cfg(seed));
    CampaignConfig cfg = attack_cfg(seed);
    cfg.noise_ops = 50;
    cfg.noise_cpu = 1;  // noise on the other CPU: different pcp cache
    ExplFrameCampaign attack(sys, cfg);
    const auto report = attack.run();
    if (!report.template_found) continue;
    EXPECT_TRUE(report.steered) << "seed " << seed;
    return;
  }
  GTEST_FAIL() << "no seed produced a usable template";
}

TEST(ExplFrameCampaignAes, SameCpuNoiseCanStealFrame) {
  // With heavy same-CPU noise between plant and victim allocation the
  // planted frame is usually consumed by the noise process instead.
  std::size_t attempted = 0;
  std::size_t steered = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    kernel::System sys(attack_system_cfg(seed));
    CampaignConfig cfg = attack_cfg(seed);
    cfg.noise_ops = 200;
    cfg.noise_cpu = 0;  // same CPU as the attack
    ExplFrameCampaign attack(sys, cfg);
    const auto report = attack.run();
    if (!report.template_found) continue;
    ++attempted;
    steered += report.steered ? 1 : 0;
  }
  ASSERT_GT(attempted, 0u);
  EXPECT_LT(steered, attempted);  // noise must spoil at least one run
}

TEST(ExplFrameCampaignAes, DfaIsRejected) {
  kernel::System sys(attack_system_cfg(1));
  CampaignConfig cfg = attack_cfg(1);
  cfg.analysis = fault::AnalysisKind::kDfa;
  EXPECT_DEATH({ ExplFrameCampaign c(sys, cfg); }, "persistent");
}

}  // namespace
}  // namespace explframe::attack
