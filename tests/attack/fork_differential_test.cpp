// The snapshot/fork acceptance tests:
//
//  * fork ≡ fresh at campaign level — for EVERY registered scenario
//    (including all four defence configurations), trial reports produced
//    by forking from the post-templating snapshot must equal the straight
//    single-shot path field for field, template_time included;
//  * run_trial_group ≡ run_trial — a variant family sharing one
//    template_key, executed off one shared templated machine, reports
//    exactly what independent fresh trials report;
//  * thread counts stay invisible — the full CampaignRunner aggregate is
//    identical at 1 and 3 workers with forking on;
//  * SweepRunner template-sharing groups emit byte-identical records with
//    sharing on and off (a shared-seed grid over a post-template axis is
//    what actually forms a multi-point group).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "attack/campaign_runner.hpp"
#include "scenario/registry.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"

namespace explframe::attack {
namespace {

#define EXPECT_REPORTS_EQUAL(a, b, label)                                   \
  do {                                                                      \
    EXPECT_EQ((a).cipher, (b).cipher) << (label);                           \
    EXPECT_EQ((a).template_found, (b).template_found) << (label);           \
    EXPECT_EQ((a).rows_scanned, (b).rows_scanned) << (label);               \
    EXPECT_EQ((a).flips_found, (b).flips_found) << (label);                 \
    EXPECT_EQ((a).table_index, (b).table_index) << (label);                 \
    EXPECT_EQ((a).fault_mask, (b).fault_mask) << (label);                   \
    EXPECT_EQ((a).steered, (b).steered) << (label);                         \
    EXPECT_EQ((a).planted_pfn, (b).planted_pfn) << (label);                 \
    EXPECT_EQ((a).victim_table_pfn, (b).victim_table_pfn) << (label);       \
    EXPECT_EQ((a).fault_injected, (b).fault_injected) << (label);           \
    EXPECT_EQ((a).fault_as_predicted, (b).fault_as_predicted) << (label);   \
    EXPECT_EQ((a).ciphertexts_used, (b).ciphertexts_used) << (label);       \
    EXPECT_EQ((a).residual_search, (b).residual_search) << (label);         \
    EXPECT_EQ((a).key_recovered, (b).key_recovered) << (label);             \
    EXPECT_EQ((a).recovered_key, (b).recovered_key) << (label);             \
    EXPECT_EQ((a).victim_key, (b).victim_key) << (label);                   \
    EXPECT_EQ((a).success, (b).success) << (label);                         \
    EXPECT_EQ((a).total_time, (b).total_time) << (label);                   \
    EXPECT_EQ((a).template_time, (b).template_time) << (label);             \
  } while (0)

TEST(ForkDifferential, ForkedAndFreshReportsIdenticalForEveryScenario) {
  for (const scenario::Scenario& s : scenario::Registry::builtin().all()) {
    RunnerConfig cfg = s.runner_config();
    // Two trials per scenario keep the sweep fast while still covering
    // distinct seeds/machines; the fork flag is the ONLY difference.
    const std::uint32_t trials = std::min(cfg.trials, 2u);
    for (std::uint32_t trial = 0; trial < trials; ++trial) {
      RunnerConfig forked = cfg;
      forked.campaign.fork_from_snapshot = true;
      RunnerConfig straight = cfg;
      straight.campaign.fork_from_snapshot = false;
      const CampaignReport a = CampaignRunner::run_trial(forked, trial);
      const CampaignReport b = CampaignRunner::run_trial(straight, trial);
      const std::string label = s.name + " trial " + std::to_string(trial);
      EXPECT_REPORTS_EQUAL(a, b, label);
      EXPECT_TRUE(a.forked_from_template || !a.template_found) << label;
      EXPECT_FALSE(b.forked_from_template) << label;
    }
  }
}

TEST(ForkDifferential, TrialGroupMatchesIndependentTrials) {
  const scenario::Scenario& s = scenario::builtin_scenario("quickstart");
  RunnerConfig base = s.runner_config();
  // Variants differ only in post-template knobs (one shared template_key):
  // the harvest budget, the analysis cadence and the contention window.
  std::vector<CampaignConfig> variants;
  for (const std::uint32_t budget : {1500u, 4000u, 8000u}) {
    CampaignConfig cfg = base.campaign;
    cfg.ciphertext_budget = budget;
    variants.push_back(cfg);
  }
  variants.push_back(base.campaign);
  variants.back().analysis_check_interval = 64;
  variants.push_back(base.campaign);
  variants.back().noise_ops = 10;

  for (std::uint32_t trial = 0; trial < 2; ++trial) {
    const std::vector<CampaignReport> grouped =
        CampaignRunner::run_trial_group(base, variants, trial);
    ASSERT_EQ(grouped.size(), variants.size());
    for (std::size_t i = 0; i < variants.size(); ++i) {
      RunnerConfig single = base;
      single.campaign = variants[i];
      const CampaignReport fresh = CampaignRunner::run_trial(single, trial);
      const std::string label =
          "variant " + std::to_string(i) + " trial " + std::to_string(trial);
      EXPECT_REPORTS_EQUAL(grouped[i], fresh, label);
    }
  }
}

TEST(ForkDifferential, ThreadCountInvisibleWithForkingOn) {
  const scenario::Scenario& s =
      scenario::builtin_scenario("present-single-flip");
  RunnerConfig cfg = s.runner_config();
  cfg.trials = 3;
  cfg.campaign.fork_from_snapshot = true;

  RunnerConfig one = cfg;
  one.threads = 1;
  RunnerConfig three = cfg;
  three.threads = 3;
  const CampaignAggregate a = CampaignRunner(one).run();
  const CampaignAggregate b = CampaignRunner(three).run();
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (std::size_t i = 0; i < a.reports.size(); ++i)
    EXPECT_REPORTS_EQUAL(a.reports[i], b.reports[i],
                         "trial " + std::to_string(i));
}

TEST(ForkDifferential, SweepTemplateSharingEmitsIdenticalRecords) {
  // A shared-seed grid over a post-template axis: every point shares one
  // template_key + master seed, so sharing forms ONE multi-point group.
  sweep::SweepSpec spec;
  spec.name = "fork-test-grid";
  spec.title = "ciphertext-budget curve off one templated base";
  spec.base = "quickstart";
  spec.seed_mode = sweep::SeedMode::kShared;
  spec.axes.push_back(
      sweep::Axis{"ciphertext_budget", {"1500", "4000", "8000"}});

  const auto run_with = [&](bool share) {
    sweep::SweepRunOptions options;
    options.threads = 1;
    options.share_templates = share;
    std::string error;
    const auto result = sweep::run_sweep(spec, scenario::Registry::builtin(),
                                         options, &error);
    EXPECT_TRUE(result.has_value()) << error;
    return result->records;
  };
  const std::vector<sweep::PointRecord> shared = run_with(true);
  const std::vector<sweep::PointRecord> fresh = run_with(false);
  ASSERT_EQ(shared.size(), 3u);
  EXPECT_EQ(shared, fresh);
}

}  // namespace
}  // namespace explframe::attack
