// CampaignRunner: the parallel sweep layer. Covers the acceptance points of
// the Campaign API redesign — AES and PRESENT flow through the same code
// path, per-trial results are deterministic for a fixed master seed
// (independent of thread count), and the aggregate matches the individual
// trials it was built from.
#include "attack/campaign_runner.hpp"

#include <gtest/gtest.h>

namespace explframe::attack {
namespace {

kernel::SystemConfig vulnerable_cfg() {
  kernel::SystemConfig c;
  c.memory_bytes = 64 * kMiB;
  c.num_cpus = 2;
  c.dram.weak_cells.cells_per_mib = 128.0;
  c.dram.weak_cells.threshold_log_mean = 10.4;
  c.dram.weak_cells.threshold_min = 25'000;
  c.dram.weak_cells.threshold_max = 60'000;
  c.dram.data_pattern_sensitivity = false;
  return c;
}

RunnerConfig runner_cfg(crypto::CipherKind cipher, std::uint32_t trials,
                        std::uint32_t threads) {
  RunnerConfig cfg;
  cfg.trials = trials;
  cfg.threads = threads;
  cfg.system = vulnerable_cfg();
  if (cipher == crypto::CipherKind::kPresent80)
    cfg.system.dram.weak_cells.cells_per_mib = 512.0;
  cfg.campaign.cipher = cipher;
  cfg.campaign.templating.buffer_bytes = 4 * kMiB;
  cfg.campaign.templating.hammer_iterations = 100'000;
  cfg.campaign.ciphertext_budget =
      cipher == crypto::CipherKind::kPresent80 ? 2000 : 8000;
  cfg.seed = 42;
  return cfg;
}

bool reports_equal(const CampaignReport& a, const CampaignReport& b) {
  return a.cipher == b.cipher && a.template_found == b.template_found &&
         a.rows_scanned == b.rows_scanned && a.flips_found == b.flips_found &&
         a.table_index == b.table_index && a.fault_mask == b.fault_mask &&
         a.steered == b.steered && a.planted_pfn == b.planted_pfn &&
         a.victim_table_pfn == b.victim_table_pfn &&
         a.fault_injected == b.fault_injected &&
         a.ciphertexts_used == b.ciphertexts_used &&
         a.residual_search == b.residual_search &&
         a.key_recovered == b.key_recovered &&
         a.recovered_key == b.recovered_key &&
         a.victim_key == b.victim_key && a.success == b.success &&
         a.total_time == b.total_time;
}

TEST(CampaignRunner, TrialSeedsAreDeterministicAndDistinct) {
  const auto a = CampaignRunner::trial_seeds(7, 0);
  const auto b = CampaignRunner::trial_seeds(7, 0);
  EXPECT_EQ(a, b);
  const auto c = CampaignRunner::trial_seeds(7, 1);
  EXPECT_NE(a, c);
  const auto d = CampaignRunner::trial_seeds(8, 0);
  EXPECT_NE(a, d);
  // System and campaign streams must not collide within a trial…
  EXPECT_NE(a.first, a.second);
  // …nor across trials: a single incremented SplitMix64 state would make
  // trial t's campaign seed equal trial t+1's system seed.
  for (const std::uint64_t master : {7ull, 100ull, 0ull}) {
    for (std::uint32_t t = 0; t < 16; ++t) {
      const auto lo = CampaignRunner::trial_seeds(master, t);
      const auto hi = CampaignRunner::trial_seeds(master, t + 1);
      EXPECT_NE(lo.second, hi.first) << "master " << master << " trial " << t;
      EXPECT_NE(lo.first, hi.first);
      EXPECT_NE(lo.second, hi.second);
    }
  }
}

TEST(CampaignRunner, AesSweepAcrossTwoThreadsIsDeterministic) {
  // >= 8 trials across >= 2 worker threads (the acceptance bar), run twice:
  // every per-trial report must be bit-identical, and a single-threaded run
  // must produce the same results (scheduling independence).
  const RunnerConfig cfg = runner_cfg(crypto::CipherKind::kAes128, 8, 2);
  CampaignAggregate first = CampaignRunner(cfg).run();
  CampaignAggregate second = CampaignRunner(cfg).run();
  RunnerConfig serial_cfg = cfg;
  serial_cfg.threads = 1;
  CampaignAggregate serial = CampaignRunner(serial_cfg).run();

  ASSERT_EQ(first.reports.size(), 8u);
  ASSERT_EQ(second.reports.size(), 8u);
  ASSERT_EQ(serial.reports.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(reports_equal(first.reports[i], second.reports[i]))
        << "trial " << i << " differs between identical runs";
    EXPECT_TRUE(reports_equal(first.reports[i], serial.reports[i]))
        << "trial " << i << " depends on thread count";
  }
  // The sweep must actually attack: at least one trial recovers the key on
  // this vulnerable module.
  EXPECT_GT(first.succeeded, 0u);
  EXPECT_GT(first.wall_seconds, 0.0);
  EXPECT_GT(first.trials_per_second(), 0.0);
}

TEST(CampaignRunner, AggregateMatchesSingleTrialRuns) {
  const RunnerConfig cfg = runner_cfg(crypto::CipherKind::kAes128, 4, 2);
  const CampaignAggregate agg = CampaignRunner(cfg).run();

  std::uint32_t templated = 0, steered = 0, faulted = 0, recovered = 0,
                succeeded = 0;
  for (std::uint32_t i = 0; i < cfg.trials; ++i) {
    const CampaignReport r = CampaignRunner::run_trial(cfg, i);
    EXPECT_TRUE(reports_equal(r, agg.reports[i])) << "trial " << i;
    templated += r.template_found;
    steered += r.steered;
    faulted += r.fault_injected;
    recovered += r.key_recovered;
    succeeded += r.success;
  }
  EXPECT_EQ(agg.templated, templated);
  EXPECT_EQ(agg.steered, steered);
  EXPECT_EQ(agg.fault_injected, faulted);
  EXPECT_EQ(agg.key_recovered, recovered);
  EXPECT_EQ(agg.succeeded, succeeded);
  EXPECT_EQ(agg.trials, cfg.trials);
  EXPECT_EQ(agg.rows_scanned.count(), cfg.trials);

  std::uint32_t stage_total = 0;
  for (const auto& [stage, count] : agg.failure_stages) stage_total += count;
  EXPECT_EQ(stage_total, cfg.trials);
}

TEST(CampaignRunner, AesAndPresentShareTheCampaignPath) {
  // The same RunnerConfig shape drives both ciphers; only the enum (and the
  // cipher-conditioned knobs) differ. Both must produce cipher-tagged
  // reports with the right key sizes out of the one ExplFrameCampaign.
  const CampaignAggregate aes =
      CampaignRunner(runner_cfg(crypto::CipherKind::kAes128, 4, 2)).run();
  const CampaignAggregate present =
      CampaignRunner(runner_cfg(crypto::CipherKind::kPresent80, 4, 2)).run();

  for (const CampaignReport& r : aes.reports) {
    EXPECT_EQ(r.cipher, crypto::CipherKind::kAes128);
    EXPECT_EQ(r.victim_key.size(), 16u);
  }
  for (const CampaignReport& r : present.reports) {
    EXPECT_EQ(r.cipher, crypto::CipherKind::kPresent80);
    EXPECT_EQ(r.victim_key.size(), 10u);
  }
  // Different ciphers, different trials — but the same phase accounting.
  EXPECT_LE(aes.succeeded, aes.key_recovered);
  EXPECT_LE(present.succeeded, present.key_recovered);
}

TEST(CampaignRunner, ZeroThreadsClampsToOne) {
  // RunnerConfig documents "0 = 1": a zero thread count must run serially,
  // not hang or crash, and produce exactly the single-threaded results.
  RunnerConfig cfg = runner_cfg(crypto::CipherKind::kAes128, 2, 0);
  const CampaignAggregate zero = CampaignRunner(cfg).run();
  cfg.threads = 1;
  const CampaignAggregate one = CampaignRunner(cfg).run();
  ASSERT_EQ(zero.reports.size(), 2u);
  for (std::size_t i = 0; i < zero.reports.size(); ++i)
    EXPECT_TRUE(reports_equal(zero.reports[i], one.reports[i]))
        << "trial " << i;
}

TEST(CampaignRunner, MoreThreadsThanTrialsClampsToTrials) {
  // Oversubscription must not spawn idle workers or change results.
  RunnerConfig cfg = runner_cfg(crypto::CipherKind::kAes128, 2, 16);
  const CampaignAggregate wide = CampaignRunner(cfg).run();
  cfg.threads = 1;
  const CampaignAggregate serial = CampaignRunner(cfg).run();
  ASSERT_EQ(wide.reports.size(), 2u);
  for (std::size_t i = 0; i < wide.reports.size(); ++i)
    EXPECT_TRUE(reports_equal(wide.reports[i], serial.reports[i]))
        << "trial " << i;
}

TEST(CampaignRunner, DistinctMasterSeedsDecorrelateTrials) {
  const RunnerConfig cfg_a = runner_cfg(crypto::CipherKind::kAes128, 2, 2);
  RunnerConfig cfg_b = cfg_a;
  cfg_b.seed = cfg_a.seed + 1;
  const CampaignAggregate a = CampaignRunner(cfg_a).run();
  const CampaignAggregate b = CampaignRunner(cfg_b).run();
  std::size_t identical = 0;
  for (std::size_t i = 0; i < a.reports.size(); ++i)
    identical += reports_equal(a.reports[i], b.reports[i]) ? 1 : 0;
  EXPECT_LT(identical, a.reports.size());
  // Victim keys must differ: each trial's key derives from its own seed.
  EXPECT_NE(a.reports[0].victim_key, b.reports[0].victim_key);
}

}  // namespace
}  // namespace explframe::attack
