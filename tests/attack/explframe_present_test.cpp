// ExplFrame against PRESENT-80 — the same ExplFrameCampaign code path as
// the AES tests, differing only in CampaignConfig::cipher, plus the
// PRESENT-specific victim behaviours (nibble table, dead high bits).
#include <gtest/gtest.h>

#include <algorithm>

#include "attack/campaign.hpp"
#include "attack/victim.hpp"
#include "crypto/present80.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace explframe::attack {
namespace {

using crypto::Present80;

kernel::SystemConfig present_system_cfg(std::uint64_t seed) {
  kernel::SystemConfig c;
  c.memory_bytes = 64 * kMiB;
  c.num_cpus = 2;
  // Dense population: the PRESENT table is a 16-byte target (vs 256 for
  // AES), so templating needs far more candidate cells.
  c.dram.weak_cells.cells_per_mib = 512.0;
  c.dram.weak_cells.threshold_log_mean = 10.4;
  c.dram.weak_cells.threshold_min = 25'000;
  c.dram.weak_cells.threshold_max = 60'000;
  c.dram.data_pattern_sensitivity = false;
  c.seed = seed;
  return c;
}

CampaignConfig present_attack_cfg(std::uint64_t seed) {
  CampaignConfig cfg;
  cfg.cipher = crypto::CipherKind::kPresent80;
  cfg.templating.buffer_bytes = 4 * kMiB;
  cfg.templating.hammer_iterations = 100'000;
  cfg.ciphertext_budget = 2000;
  cfg.seed = seed;
  return cfg;
}

const crypto::TableCipher& present_cipher() {
  return crypto::cipher_for(crypto::CipherKind::kPresent80);
}

VictimConfig present_victim_cfg(std::uint64_t key_seed) {
  VictimConfig vc;
  vc.key = crypto::random_key(present_cipher(), key_seed);
  return vc;
}

Present80::Key to_present_key(const std::vector<std::uint8_t>& bytes) {
  Present80::Key k{};
  std::copy(bytes.begin(), bytes.end(), k.begin());
  return k;
}

std::uint64_t encrypt_u64(VictimCipherService& victim, std::uint64_t pt) {
  return le_bytes_to_u64(victim.encrypt(u64_to_le_bytes(pt)));
}

TEST(VictimPresentService, EncryptsCorrectly) {
  kernel::SystemConfig c = present_system_cfg(1);
  c.dram.weak_cells.cells_per_mib = 0.0;
  kernel::System sys(c);
  const VictimConfig vc = present_victim_cfg(3);
  VictimCipherService victim(sys, 0, present_cipher(), vc);
  victim.start();
  victim.install_tables();
  const auto rk = Present80::expand_key(to_present_key(vc.key));
  Rng rng(3);
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t pt = rng.next();
    EXPECT_EQ(encrypt_u64(victim, pt), Present80::encrypt(pt, rk));
  }
  EXPECT_FALSE(victim.table_corrupted());
}

TEST(VictimPresentService, LowNibbleCorruptionDetectedAndLive) {
  kernel::SystemConfig c = present_system_cfg(1);
  c.dram.weak_cells.cells_per_mib = 0.0;
  kernel::System sys(c);
  const VictimConfig vc = present_victim_cfg(4);
  VictimCipherService victim(sys, 0, present_cipher(), vc);
  victim.start();
  victim.install_tables();
  const auto phys = sys.phys_of(
      victim.task(), victim.table_page_va() + vc.sbox_offset + 5);
  sys.dram().write_byte(phys, sys.dram().read_byte(phys) ^ 0x2);
  EXPECT_TRUE(victim.table_corrupted());
  auto faulty = Present80::sbox();
  faulty[5] ^= 0x2;
  const auto rk = Present80::expand_key(to_present_key(vc.key));
  Rng rng(4);
  const std::uint64_t pt = rng.next();
  EXPECT_EQ(encrypt_u64(victim, pt),
            Present80::encrypt_with_sbox(
                pt, rk, std::span<const std::uint8_t, 16>(faulty)));
}

TEST(VictimPresentService, HighNibbleCorruptionIsMaskedOut) {
  kernel::SystemConfig c = present_system_cfg(1);
  c.dram.weak_cells.cells_per_mib = 0.0;
  kernel::System sys(c);
  const VictimConfig vc = present_victim_cfg(5);
  VictimCipherService victim(sys, 0, present_cipher(), vc);
  victim.start();
  victim.install_tables();
  const auto phys = sys.phys_of(
      victim.task(), victim.table_page_va() + vc.sbox_offset + 5);
  sys.dram().write_byte(phys, sys.dram().read_byte(phys) ^ 0x80);
  // The stored byte changed but the implementation masks the high nibble.
  EXPECT_FALSE(victim.table_corrupted());
  const auto rk = Present80::expand_key(to_present_key(vc.key));
  Rng rng(5);
  const std::uint64_t pt = rng.next();
  EXPECT_EQ(encrypt_u64(victim, pt), Present80::encrypt(pt, rk));
}

TEST(ExplFrameCampaignPresent, EndToEndKeyRecovery) {
  bool any_success = false;
  std::size_t attempted = 0;
  for (std::uint64_t seed = 1; seed <= 6 && !any_success; ++seed) {
    kernel::System sys(present_system_cfg(seed));
    // An explicit key makes the success check independent of the
    // campaign's own victim-key bookkeeping.
    CampaignConfig cfg = present_attack_cfg(seed);
    cfg.victim.key = crypto::random_key(present_cipher(), seed * 131 + 17);
    ExplFrameCampaign attack(sys, cfg);
    const auto report = attack.run();
    if (!report.template_found) continue;  // 16-byte window: misses happen
    ++attempted;
    EXPECT_TRUE(report.steered) << "seed " << seed;
    EXPECT_TRUE(report.fault_injected) << "seed " << seed;
    if (report.success) {
      any_success = true;
      EXPECT_EQ(report.recovered_key, cfg.victim.key);
      EXPECT_EQ(report.recovered_key.size(), 10u);
      EXPECT_LE(report.ciphertexts_used, 2000u);
      EXPECT_LE(report.residual_search, 1u << 16);
      EXPECT_EQ(report.failure_stage(), "none");
    }
  }
  EXPECT_TRUE(any_success) << "attempted " << attempted;
}

TEST(ExplFrameCampaignPresent, MaxLikelihoodIsRejected) {
  // Fail-fast in the constructor, not mid-sweep in make_analysis.
  kernel::System sys(present_system_cfg(1));
  CampaignConfig cfg = present_attack_cfg(1);
  cfg.analysis = fault::AnalysisKind::kPfaMaxLikelihood;
  EXPECT_DEATH({ ExplFrameCampaign c(sys, cfg); }, "AES-only");
}

TEST(ExplFrameCampaignPresent, OnlyLiveBitsAreUsableTemplates) {
  // Any flip the campaign accepts for PRESENT must target a live (low
  // nibble) bit — dead-bit flips cannot fault the cipher.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    kernel::System sys(present_system_cfg(seed));
    ExplFrameCampaign attack(sys, present_attack_cfg(seed));
    const auto report = attack.run();
    if (!report.template_found) continue;
    EXPECT_LT(report.chosen.bit, 4) << "seed " << seed;
    EXPECT_NE(report.fault_mask & 0x0F, 0) << "seed " << seed;
    EXPECT_EQ(report.fault_mask & 0xF0, 0) << "seed " << seed;
  }
}

}  // namespace
}  // namespace explframe::attack
