#include "attack/explframe_present.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace explframe::attack {
namespace {

using crypto::Present80;

kernel::SystemConfig present_system_cfg(std::uint64_t seed) {
  kernel::SystemConfig c;
  c.memory_bytes = 64 * kMiB;
  c.num_cpus = 2;
  // Dense population: the PRESENT table is a 16-byte target (vs 256 for
  // AES), so templating needs far more candidate cells.
  c.dram.weak_cells.cells_per_mib = 512.0;
  c.dram.weak_cells.threshold_log_mean = 10.4;
  c.dram.weak_cells.threshold_min = 25'000;
  c.dram.weak_cells.threshold_max = 60'000;
  c.dram.data_pattern_sensitivity = false;
  c.seed = seed;
  return c;
}

ExplFramePresentConfig present_attack_cfg(std::uint64_t seed) {
  ExplFramePresentConfig cfg;
  cfg.templating.buffer_bytes = 4 * kMiB;
  cfg.templating.hammer_iterations = 100'000;
  Rng rng(seed * 131 + 17);
  rng.fill_bytes(cfg.victim.key);
  cfg.ciphertext_budget = 2000;
  cfg.seed = seed;
  return cfg;
}

TEST(VictimPresentService, EncryptsCorrectly) {
  kernel::SystemConfig c = present_system_cfg(1);
  c.dram.weak_cells.cells_per_mib = 0.0;
  kernel::System sys(c);
  VictimPresentService::Config vc;
  Rng rng(3);
  rng.fill_bytes(vc.key);
  VictimPresentService victim(sys, 0, vc);
  victim.start();
  victim.install_tables();
  const auto rk = Present80::expand_key(vc.key);
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t pt = rng.next();
    EXPECT_EQ(victim.encrypt(pt), Present80::encrypt(pt, rk));
  }
  EXPECT_FALSE(victim.table_corrupted());
}

TEST(VictimPresentService, LowNibbleCorruptionDetectedAndLive) {
  kernel::SystemConfig c = present_system_cfg(1);
  c.dram.weak_cells.cells_per_mib = 0.0;
  kernel::System sys(c);
  VictimPresentService::Config vc;
  Rng rng(4);
  rng.fill_bytes(vc.key);
  VictimPresentService victim(sys, 0, vc);
  victim.start();
  victim.install_tables();
  const auto phys = sys.phys_of(
      victim.task(), victim.table_page_va() + vc.sbox_offset + 5);
  sys.dram().write_byte(phys, sys.dram().read_byte(phys) ^ 0x2);
  EXPECT_TRUE(victim.table_corrupted());
  auto faulty = Present80::sbox();
  faulty[5] ^= 0x2;
  const auto rk = Present80::expand_key(vc.key);
  const std::uint64_t pt = rng.next();
  EXPECT_EQ(victim.encrypt(pt),
            Present80::encrypt_with_sbox(
                pt, rk, std::span<const std::uint8_t, 16>(faulty)));
}

TEST(VictimPresentService, HighNibbleCorruptionIsMaskedOut) {
  kernel::SystemConfig c = present_system_cfg(1);
  c.dram.weak_cells.cells_per_mib = 0.0;
  kernel::System sys(c);
  VictimPresentService::Config vc;
  Rng rng(5);
  rng.fill_bytes(vc.key);
  VictimPresentService victim(sys, 0, vc);
  victim.start();
  victim.install_tables();
  const auto phys = sys.phys_of(
      victim.task(), victim.table_page_va() + vc.sbox_offset + 5);
  sys.dram().write_byte(phys, sys.dram().read_byte(phys) ^ 0x80);
  // The stored byte changed but the implementation masks the high nibble.
  EXPECT_FALSE(victim.table_corrupted());
  const auto rk = Present80::expand_key(vc.key);
  const std::uint64_t pt = rng.next();
  EXPECT_EQ(victim.encrypt(pt), Present80::encrypt(pt, rk));
}

TEST(ExplFramePresentAttack, EndToEndKeyRecovery) {
  bool any_success = false;
  std::size_t attempted = 0;
  for (std::uint64_t seed = 1; seed <= 6 && !any_success; ++seed) {
    kernel::System sys(present_system_cfg(seed));
    ExplFramePresentAttack attack(sys, present_attack_cfg(seed));
    const auto report = attack.run();
    if (!report.template_found) continue;  // 16-byte window: misses happen
    ++attempted;
    EXPECT_TRUE(report.steered) << "seed " << seed;
    EXPECT_TRUE(report.fault_injected) << "seed " << seed;
    if (report.success) {
      any_success = true;
      EXPECT_EQ(report.recovered_key, present_attack_cfg(seed).victim.key);
      EXPECT_LE(report.ciphertexts_used, 2000u);
      EXPECT_LE(report.residual_search, 1u << 16);
      EXPECT_EQ(report.failure_stage(), "none");
    }
  }
  EXPECT_TRUE(any_success) << "attempted " << attempted;
}

TEST(ExplFramePresentReport, FailureStages) {
  ExplFramePresentReport r;
  EXPECT_EQ(r.failure_stage(), "templating");
  r.template_found = true;
  EXPECT_EQ(r.failure_stage(), "steering");
  r.steered = true;
  EXPECT_EQ(r.failure_stage(), "fault-injection");
  r.fault_injected = true;
  EXPECT_EQ(r.failure_stage(), "key-recovery");
  r.key_recovered = true;
  EXPECT_EQ(r.failure_stage(), "key-mismatch");
  r.success = true;
  EXPECT_EQ(r.failure_stage(), "none");
}

}  // namespace
}  // namespace explframe::attack
