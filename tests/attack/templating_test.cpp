#include "attack/templating.hpp"

#include <gtest/gtest.h>

namespace explframe::attack {
namespace {

kernel::SystemConfig hammerable_cfg() {
  kernel::SystemConfig c;
  c.memory_bytes = 64 * kMiB;
  c.num_cpus = 1;
  c.dram.weak_cells.cells_per_mib = 128.0;
  c.dram.weak_cells.threshold_log_mean = 10.4;  // median ~33K activations
  c.dram.weak_cells.threshold_min = 25'000;
  c.dram.weak_cells.threshold_max = 60'000;
  c.dram.data_pattern_sensitivity = false;
  c.seed = 11;
  return c;
}

TemplateConfig fast_template() {
  TemplateConfig t;
  t.buffer_bytes = 2 * kMiB;
  t.hammer_iterations = 100'000;
  t.both_polarities = true;
  return t;
}

TEST(Templater, StrideDiscoveryFindsBankSweep) {
  kernel::System sys(hammerable_cfg());
  kernel::Task& attacker = sys.spawn("attacker", 0);
  Templater templater(sys, attacker, fast_template());
  templater.allocate_buffer();
  // With 8 banks and 8 KiB rows, same-bank neighbouring rows are one bank
  // sweep (64 KiB) apart in physical (and hence buffer-VA) space.
  EXPECT_EQ(templater.row_stride(),
            sys.dram().geometry().banks *
                static_cast<std::uint64_t>(sys.dram().geometry().row_bytes));
}

TEST(Templater, BufferIsMostlyPhysicallyContiguous) {
  kernel::System sys(hammerable_cfg());
  kernel::Task& attacker = sys.spawn("attacker", 0);
  Templater templater(sys, attacker, fast_template());
  templater.allocate_buffer();
  const vm::VirtAddr base = templater.buffer_va();
  std::uint64_t contiguous = 0;
  for (std::uint64_t p = 0; p + 1 < templater.buffer_pages(); ++p) {
    const mm::Pfn a = sys.translate(attacker, base + p * kPageSize);
    const mm::Pfn b = sys.translate(attacker, base + (p + 1) * kPageSize);
    if (b == a + 1) ++contiguous;
  }
  // The attacker's contiguity assumption: the vast majority of neighbours.
  EXPECT_GT(contiguous, templater.buffer_pages() * 8 / 10);
}

TEST(Templater, ScanFindsFlipsInVulnerableBuffer) {
  kernel::System sys(hammerable_cfg());
  kernel::Task& attacker = sys.spawn("attacker", 0);
  Templater templater(sys, attacker, fast_template());
  templater.allocate_buffer();
  TemplateConfig cfg = fast_template();
  (void)cfg;
  const auto report = templater.scan();
  EXPECT_GT(report.rows_scanned, 0u);
  EXPECT_GT(report.flips.size(), 0u);
  EXPECT_GT(report.pages_with_flips, 0u);
  // Flip records are internally consistent.
  for (const auto& f : report.flips) {
    EXPECT_GE(f.page_va, templater.buffer_va());
    EXPECT_LT(f.offset, kPageSize);
    EXPECT_LT(f.bit, 8);
    EXPECT_EQ(f.aggressor_hi - f.aggressor_lo, 2 * templater.row_stride());
  }
}

TEST(Templater, FlipsMatchGroundTruthWeakCells) {
  kernel::System sys(hammerable_cfg());
  kernel::Task& attacker = sys.spawn("attacker", 0);
  Templater templater(sys, attacker, fast_template());
  templater.allocate_buffer();
  const auto report = templater.scan();
  ASSERT_GT(report.flips.size(), 0u);
  for (const auto& f : report.flips) {
    const auto phys = sys.phys_of(attacker, f.page_va);
    const auto coord = sys.dram().mapping().decode(phys);
    const auto flat = dram::flat_row(sys.dram().geometry(), coord);
    const auto& cells = sys.dram().weak_cells().cells_in_row(flat);
    bool matches = false;
    for (const auto& cell : cells) {
      if (cell.col % kPageSize == f.offset && cell.bit == f.bit &&
          cell.true_cell == !f.to_one) {
        matches = true;
      }
    }
    EXPECT_TRUE(matches) << "templated flip has no underlying weak cell";
  }
}

TEST(Templater, StopAfterLimitsScan) {
  kernel::System sys(hammerable_cfg());
  kernel::Task& attacker = sys.spawn("attacker", 0);
  TemplateConfig cfg = fast_template();
  cfg.stop_after = 1;
  Templater templater(sys, attacker, cfg);
  templater.allocate_buffer();
  const auto report = templater.scan();
  EXPECT_EQ(report.pages_with_flips, 1u);
  // A full scan of the 2 MiB buffer would visit ~254 rows.
  EXPECT_LT(report.rows_scanned, 250u);
}

TEST(Templater, ScanUntilPredicateStopsEarly) {
  kernel::System sys(hammerable_cfg());
  kernel::Task& attacker = sys.spawn("attacker", 0);
  Templater templater(sys, attacker, fast_template());
  templater.allocate_buffer();
  const auto report = templater.scan_until(
      [](const FlipRecord& f) { return f.offset < kPageSize / 2; });
  bool found = false;
  for (const auto& f : report.flips) found |= f.offset < kPageSize / 2;
  EXPECT_TRUE(found);
}

TEST(Templater, RehammerReproducesFlip) {
  // The §VI observation: "high probability of getting bit flips in the same
  // location when conducting Rowhammer on the same virtual address space".
  kernel::System sys(hammerable_cfg());
  kernel::Task& attacker = sys.spawn("attacker", 0);
  Templater templater(sys, attacker, fast_template());
  templater.allocate_buffer();
  const auto report = templater.scan();
  ASSERT_GT(report.flips.size(), 0u);
  const FlipRecord& f = report.flips.front();

  // Restore the charged pattern at the flip location, then re-hammer.
  const std::uint8_t charged =
      f.to_one ? 0x00 : 0xFF;  // anti cells flip 0->1, true cells 1->0
  ASSERT_TRUE(sys.mem_write(attacker, f.page_va + f.offset, {&charged, 1}));
  sys.dram().refresh_now();
  sys.dram().drain_flips();
  templater.hammer_aggressors(f);
  std::uint8_t now = 0;
  ASSERT_TRUE(sys.mem_read(attacker, f.page_va + f.offset, {&now, 1}));
  EXPECT_EQ(((now >> f.bit) & 1u) != 0, f.to_one);
}

TEST(Templater, RandomPairStrategyFindsFlips) {
  kernel::System sys(hammerable_cfg());
  kernel::Task& attacker = sys.spawn("attacker", 0);
  TemplateConfig cfg = fast_template();
  cfg.strategy = TemplateStrategy::kRandomPairs;
  cfg.max_rows = 96;  // hammer sessions
  cfg.seed = 5;
  Templater templater(sys, attacker, cfg);
  templater.allocate_buffer();
  const auto report = templater.scan();
  EXPECT_GT(report.flips.size(), 0u);
  for (const auto& f : report.flips) {
    EXPECT_GE(f.page_va, templater.buffer_va());
    EXPECT_NE(f.aggressor_lo, f.aggressor_hi);
  }
}

TEST(Templater, RandomPairsWorkUnderXorBankHashing) {
  // XOR bank hashing misleads the contiguous-stride strategy but not
  // random-pair templating.
  kernel::SystemConfig c = hammerable_cfg();
  c.dram.mapping = dram::MappingScheme::kBankXor;
  kernel::System sys(c);
  kernel::Task& attacker = sys.spawn("attacker", 0);
  TemplateConfig cfg = fast_template();
  cfg.strategy = TemplateStrategy::kRandomPairs;
  cfg.max_rows = 96;
  Templater templater(sys, attacker, cfg);
  templater.allocate_buffer();
  const auto report = templater.scan();
  EXPECT_GT(report.flips.size(), 0u);
}

TEST(Templater, ContiguousStrategyMisledByXorBankHashing) {
  // Under XOR hashing the smallest conflicting stride is banks rows away:
  // the "double-sided" aggressors are then far from the scanned row and the
  // scan comes up empty — the stride heuristic is defeated silently.
  kernel::SystemConfig c = hammerable_cfg();
  c.dram.mapping = dram::MappingScheme::kBankXor;
  kernel::System sys(c);
  kernel::Task& attacker = sys.spawn("attacker", 0);
  Templater templater(sys, attacker, fast_template());
  templater.allocate_buffer();
  // Discovered stride is a whole bank-sweep times the bank count.
  EXPECT_EQ(templater.row_stride(),
            static_cast<std::uint64_t>(sys.dram().geometry().banks) *
                sys.dram().geometry().banks *
                sys.dram().geometry().row_bytes);
  TemplateConfig budget = fast_template();
  (void)budget;
  const auto report = templater.scan();
  EXPECT_EQ(report.flips.size(), 0u);
}

TEST(Templater, MaxRowsBudgetRespected) {
  kernel::System sys(hammerable_cfg());
  kernel::Task& attacker = sys.spawn("attacker", 0);
  TemplateConfig cfg = fast_template();
  cfg.max_rows = 7;
  Templater templater(sys, attacker, cfg);
  templater.allocate_buffer();
  const auto report = templater.scan();
  EXPECT_EQ(report.rows_scanned, 7u);
}

TEST(Templater, NoFlipsOnHealthyDram) {
  kernel::SystemConfig c = hammerable_cfg();
  c.dram.weak_cells.cells_per_mib = 0.0;
  kernel::System sys(c);
  kernel::Task& attacker = sys.spawn("attacker", 0);
  TemplateConfig cfg = fast_template();
  cfg.buffer_bytes = 512 * kKiB;  // keep runtime low
  Templater templater(sys, attacker, cfg);
  templater.allocate_buffer();
  const auto report = templater.scan();
  EXPECT_EQ(report.flips.size(), 0u);
  EXPECT_EQ(report.pages_with_flips, 0u);
}

}  // namespace
}  // namespace explframe::attack
