// Parameterized property sweeps: the core invariants checked across the
// configuration space rather than at single points.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "dram/address_mapping.hpp"
#include "kernel/system.hpp"
#include "mm/page_allocator.hpp"
#include "support/rng.hpp"

namespace explframe {
namespace {

// ---------------------------------------------------------------- buddy --

class BuddyChurnSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BuddyChurnSweep, AccountingHoldsUnderChurn) {
  const std::uint64_t pages = GetParam();
  mm::PageFrameDatabase db(pages);
  mm::BuddyAllocator buddy(db, 0, pages, 0);
  Rng rng(pages * 17 + 1);
  struct Held {
    mm::Pfn pfn;
    std::uint32_t order;
  };
  std::vector<Held> held;
  for (int step = 0; step < 3000; ++step) {
    if (held.empty() || rng.bernoulli(0.55)) {
      const auto order = static_cast<std::uint32_t>(rng.uniform(5));
      const mm::Pfn p = buddy.alloc_block(order);
      if (p != mm::kInvalidPfn) held.push_back({p, order});
    } else {
      const std::size_t i = rng.uniform(held.size());
      buddy.free_block(held[i].pfn, held[i].order);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  buddy.verify();
  std::uint64_t held_pages = 0;
  for (const auto& h : held) held_pages += mm::Pfn{1} << h.order;
  EXPECT_EQ(buddy.free_pages() + held_pages, pages);
  for (const auto& h : held) buddy.free_block(h.pfn, h.order);
  EXPECT_EQ(buddy.free_pages(), pages);
  buddy.verify();
}

INSTANTIATE_TEST_SUITE_P(ZoneSizes, BuddyChurnSweep,
                         ::testing::Values(33, 100, 1000, 1024, 4095, 4096,
                                           8192, 10000));

// -------------------------------------------------------- page allocator --

struct AllocatorSweepParam {
  mm::Arch arch;
  std::uint32_t cpus;
  std::uint32_t pcp_high;
  std::uint32_t pcp_batch;
  bool lifo;
};

class AllocatorSweep : public ::testing::TestWithParam<AllocatorSweepParam> {};

TEST_P(AllocatorSweep, TotalPagesConserved) {
  const auto p = GetParam();
  mm::AllocatorConfig cfg;
  cfg.total_bytes = 64 * kMiB;
  cfg.arch = p.arch;
  cfg.num_cpus = p.cpus;
  cfg.pcp = {p.pcp_high, p.pcp_batch, p.lifo};
  mm::PageAllocator alloc(cfg);
  Rng rng(p.cpus * 1000 + p.pcp_high);
  struct Held {
    mm::Pfn pfn;
    std::uint32_t order;
    std::uint32_t cpu;
  };
  std::vector<Held> held;
  for (int step = 0; step < 8000; ++step) {
    if (held.empty() || rng.bernoulli(0.5)) {
      const auto order = static_cast<std::uint32_t>(rng.uniform(3));
      const auto cpu = static_cast<std::uint32_t>(rng.uniform(p.cpus));
      const auto a =
          alloc.alloc_pages(order, mm::GfpFlags::user(), cpu, 1);
      if (a) held.push_back({a->pfn, a->order, cpu});
    } else {
      const std::size_t i = rng.uniform(held.size());
      alloc.free_pages(held[i].pfn, held[i].order, held[i].cpu);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  alloc.verify();
  // Conservation: free + pcp + held == managed.
  std::uint64_t managed = 0, pcp = 0;
  for (std::size_t z = 0; z < alloc.zone_count(); ++z) {
    managed += alloc.zone(z).pages();
    pcp += alloc.zone(z).pcp_pages();
  }
  std::uint64_t held_pages = 0;
  for (const auto& h : held) held_pages += mm::Pfn{1} << h.order;
  EXPECT_EQ(alloc.global_free_pages() + pcp + held_pages, managed);
}

TEST_P(AllocatorSweep, LifoReuseProperty) {
  const auto p = GetParam();
  mm::AllocatorConfig cfg;
  cfg.total_bytes = 64 * kMiB;
  cfg.arch = p.arch;
  cfg.num_cpus = p.cpus;
  cfg.pcp = {p.pcp_high, p.pcp_batch, p.lifo};
  mm::PageAllocator alloc(cfg);
  // Warm the pcp, then check the policy-defined reuse behaviour.
  const auto warm = alloc.alloc_pages(0, mm::GfpFlags::user(), 0, 1);
  ASSERT_TRUE(warm);
  const auto a = alloc.alloc_pages(0, mm::GfpFlags::user(), 0, 1);
  ASSERT_TRUE(a);
  alloc.free_pages(a->pfn, 0, 0);
  const auto b = alloc.alloc_pages(0, mm::GfpFlags::user(), 0, 2);
  ASSERT_TRUE(b);
  if (p.lifo) {
    EXPECT_EQ(b->pfn, a->pfn);  // the paper's property
  } else {
    EXPECT_NE(b->pfn, a->pfn);  // FIFO: the freed frame waits in line
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AllocatorSweep,
    ::testing::Values(
        AllocatorSweepParam{mm::Arch::kX86_64, 1, 186, 31, true},
        AllocatorSweepParam{mm::Arch::kX86_64, 2, 186, 31, true},
        AllocatorSweepParam{mm::Arch::kX86_64, 4, 16, 8, true},
        AllocatorSweepParam{mm::Arch::kX86_64, 2, 64, 31, false},
        AllocatorSweepParam{mm::Arch::kX86_32, 2, 186, 31, true},
        AllocatorSweepParam{mm::Arch::kX86_32, 1, 16, 4, false}));

// -------------------------------------------------------- address mapping --

struct MappingSweepParam {
  std::uint32_t channels, ranks, banks, rows;
  dram::MappingScheme scheme;
};

class MappingSweep : public ::testing::TestWithParam<MappingSweepParam> {};

TEST_P(MappingSweep, BijectiveOverFullSpace) {
  const auto p = GetParam();
  dram::Geometry g;
  g.channels = p.channels;
  g.ranks = p.ranks;
  g.banks = p.banks;
  g.rows_per_bank = p.rows;
  g.row_bytes = 8192;
  dram::AddressMapping map(g, p.scheme);
  Rng rng(p.banks * 7 + p.rows);
  std::set<std::uint64_t> seen_rows;
  for (int i = 0; i < 5000; ++i) {
    const dram::PhysAddr a = rng.uniform(g.total_bytes());
    const auto c = map.decode(a);
    EXPECT_EQ(map.encode(c), a);
    seen_rows.insert(dram::flat_row(g, c));
    EXPECT_LT(dram::flat_row(g, c), g.total_rows());
  }
  // Sampling covers a healthy spread of rows.
  EXPECT_GT(seen_rows.size(), 100u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, MappingSweep,
    ::testing::Values(
        MappingSweepParam{1, 1, 8, 1024, dram::MappingScheme::kRowMajor},
        MappingSweepParam{1, 1, 8, 1024, dram::MappingScheme::kBankXor},
        MappingSweepParam{2, 2, 8, 512, dram::MappingScheme::kRowMajor},
        MappingSweepParam{2, 2, 8, 512, dram::MappingScheme::kBankXor},
        MappingSweepParam{1, 2, 16, 2048, dram::MappingScheme::kRowMajor},
        MappingSweepParam{4, 1, 4, 4096, dram::MappingScheme::kBankXor}));

// --------------------------------------------------------- system/steering --

class SteeringSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SteeringSweep, MunmapReallocPropertyAcrossCpuCounts) {
  const std::uint32_t cpus = GetParam();
  kernel::SystemConfig cfg;
  cfg.memory_bytes = 64 * kMiB;
  cfg.num_cpus = cpus;
  cfg.dram.weak_cells.cells_per_mib = 0.0;
  kernel::System sys(cfg);
  for (std::uint32_t cpu = 0; cpu < cpus; ++cpu) {
    kernel::Task& a = sys.spawn("rel", cpu);
    kernel::Task& b = sys.spawn("acq", cpu);
    for (kernel::Task* t : {&a, &b}) {
      const vm::VirtAddr w = sys.sys_mmap(*t, kPageSize);
      const std::uint8_t wb = 1;
      ASSERT_TRUE(sys.mem_write(*t, w, {&wb, 1}));
    }
    const vm::VirtAddr va = sys.sys_mmap(a, kPageSize);
    const std::uint8_t byte = 2;
    ASSERT_TRUE(sys.mem_write(a, va, {&byte, 1}));
    const mm::Pfn released = sys.translate(a, va);
    sys.sys_munmap(a, va, kPageSize);
    const vm::VirtAddr vb = sys.sys_mmap(b, kPageSize);
    ASSERT_TRUE(sys.mem_write(b, vb, {&byte, 1}));
    EXPECT_EQ(sys.translate(b, vb), released) << "cpu " << cpu;
  }
}

INSTANTIATE_TEST_SUITE_P(CpuCounts, SteeringSweep,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace explframe
