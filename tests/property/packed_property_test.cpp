// Property/fuzz tests for the bit-packed SoA containers behind the DRAM
// state refactor: PackedVector and RowIndex (support/packed.hpp) and the
// DisturbanceTable / TrrSampler / LiveFlipTable device tables
// (dram/packed_state.hpp).
//
// Each container is driven through seeded random operation storms alongside
// a plain-STL oracle (std::vector / std::map) and must agree on every
// observable after every operation batch. Width saturation is a CHECK, not
// a truncation: storing a value wider than the declared field (threshold
// >= 2^19, col >= 2^28, ...) must abort, never wrap. Snapshot round trips
// are fixed points: capture -> restore -> capture reproduces the identical
// image.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "dram/dram_device.hpp"
#include "dram/packed_state.hpp"
#include "dram/weak_cells.hpp"
#include "support/packed.hpp"
#include "support/rng.hpp"
#include "support/units.hpp"

namespace explframe {
namespace {

// ---- PackedVector ----------------------------------------------------------

/// Random op storm (push_back / set / insert / erase / resize) against a
/// std::vector oracle, at every interesting field width including the
/// cross-word-spill widths.
TEST(PackedVectorProperty, StormMatchesVectorOracle) {
  for (const unsigned bits :
       {1u, 3u, 7u, 8u, 19u, 27u, 28u, 33u, 40u, 63u, 64u}) {
    SCOPED_TRACE(bits);
    Rng rng(0xbead + bits);
    PackedVector packed(bits);
    std::vector<std::uint64_t> oracle;
    const std::uint64_t mask =
        bits == 64 ? ~0ull : (1ull << bits) - 1;
    EXPECT_EQ(packed.max_value(), mask);

    for (int step = 0; step < 2000; ++step) {
      switch (rng.uniform(6)) {
        case 0:
        case 1: {  // push_back (weighted: containers should grow)
          const std::uint64_t v = rng.next() & mask;
          packed.push_back(v);
          oracle.push_back(v);
          break;
        }
        case 2: {  // set
          if (oracle.empty()) break;
          const std::size_t i = rng.uniform(oracle.size());
          const std::uint64_t v = rng.next() & mask;
          packed.set(i, v);
          oracle[i] = v;
          break;
        }
        case 3: {  // insert
          const std::size_t pos = rng.uniform(oracle.size() + 1);
          const std::uint64_t v = rng.next() & mask;
          packed.insert(pos, v);
          oracle.insert(oracle.begin() + static_cast<std::ptrdiff_t>(pos), v);
          break;
        }
        case 4: {  // erase a short run
          if (oracle.empty()) break;
          const std::size_t pos = rng.uniform(oracle.size());
          const std::size_t count =
              std::min<std::size_t>(1 + rng.uniform(4), oracle.size() - pos);
          packed.erase(pos, count);
          oracle.erase(oracle.begin() + static_cast<std::ptrdiff_t>(pos),
                       oracle.begin() +
                           static_cast<std::ptrdiff_t>(pos + count));
          break;
        }
        case 5: {  // resize (shrink or zero-extend)
          const std::size_t count = rng.uniform(oracle.size() + 16);
          packed.resize(count);
          oracle.resize(count, 0);
          break;
        }
      }
      ASSERT_EQ(packed.size(), oracle.size());
      if (step % 61 == 0) {
        for (std::size_t i = 0; i < oracle.size(); ++i)
          ASSERT_EQ(packed.get(i), oracle[i]) << "index " << i;
      }
    }
    for (std::size_t i = 0; i < oracle.size(); ++i)
      ASSERT_EQ(packed.get(i), oracle[i]);

    // Content equality is width-sensitive and content-exact.
    PackedVector copy(bits);
    for (const std::uint64_t v : oracle) copy.push_back(v);
    EXPECT_TRUE(packed == copy);
    if (!oracle.empty()) {
      copy.set(0, oracle[0] ^ 1u);
      EXPECT_FALSE(packed == copy);
    }
  }
}

/// A value one past the field's maximum must CHECK, not truncate — for
/// every store path.
TEST(PackedVectorProperty, OverWidthValuesDieInsteadOfTruncating) {
  PackedVector packed(19);
  packed.push_back(packed.max_value());  // in range: fine
  EXPECT_DEATH(packed.push_back(1ull << 19), "exceeds field width");
  EXPECT_DEATH(packed.set(0, 1ull << 19), "exceeds field width");
  EXPECT_DEATH(packed.insert(0, 1ull << 19), "exceeds field width");
}

/// The weak-cell arena inherits the saturation contract: a threshold at or
/// above 2^19 or a column at or above 2^28 aborts model construction.
TEST(PackedVectorProperty, WeakCellFieldSaturationDies) {
  // A row universe wide enough that the absurd column is the only error.
  dram::Geometry g = dram::Geometry::with_capacity(64 * kMiB);
  const dram::WeakCellParams params;

  dram::WeakCell oversized_threshold;
  oversized_threshold.threshold = 1u << 19;
  const std::pair<std::uint64_t, dram::WeakCell> pop_a[] = {
      {5, oversized_threshold}};
  EXPECT_DEATH(dram::WeakCellModel(g, params, pop_a), "exceeds field width");

  dram::WeakCell oversized_col;
  oversized_col.threshold = 30'000;
  oversized_col.col = 1u << 28;
  const std::pair<std::uint64_t, dram::WeakCell> pop_b[] = {{5, oversized_col}};
  EXPECT_DEATH(dram::WeakCellModel(g, params, pop_b), "exceeds field width");
}

// ---- RowIndex --------------------------------------------------------------

/// Random sparse key sets over random universes: every lookup observable
/// must match the sorted-vector oracle (find == binary-search index,
/// key_at is its inverse, lower_bound matches std::lower_bound, misses are
/// kNpos) — including block-boundary keys and a multi-GB-scale universe.
TEST(RowIndexProperty, LookupsMatchSortedVectorOracle) {
  Rng rng(0x10de);
  for (int round = 0; round < 40; ++round) {
    SCOPED_TRACE(round);
    // One round over a beyond-32-bit universe (the multi-GB-geometry
    // regime); its directory is ~64 MiB, so it runs once with fewer
    // probes. The rest stay dense enough to stress block collisions.
    const bool giant = round == 0;
    const std::uint64_t limit =
        giant ? (1ull << 33) : 1 + rng.uniform(1ull << 20);
    const std::size_t want = static_cast<std::size_t>(rng.uniform(600));

    std::vector<std::uint64_t> keys;
    keys.reserve(want + 4);
    for (std::size_t i = 0; i < want; ++i) keys.push_back(rng.uniform(limit));
    // Force block-edge coverage: keys adjacent to a 512-key block seam.
    if (limit > 1030) {
      keys.push_back(511);
      keys.push_back(512);
      keys.push_back(1024);
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

    const RowIndex index(keys, limit);
    ASSERT_EQ(index.size(), keys.size());
    EXPECT_EQ(index.key_limit(), limit);

    for (std::size_t i = 0; i < keys.size(); ++i) {
      ASSERT_EQ(index.find(keys[i]), i);
      ASSERT_TRUE(index.contains(keys[i]));
      ASSERT_EQ(index.ordinal(keys[i]), i);
      ASSERT_EQ(index.key_at(i), keys[i]);
    }

    for (int probe = 0; probe < (giant ? 50 : 400); ++probe) {
      const std::uint64_t key = rng.uniform(limit);
      const auto it = std::lower_bound(keys.begin(), keys.end(), key);
      const std::size_t lb = static_cast<std::size_t>(it - keys.begin());
      ASSERT_EQ(index.lower_bound(key), lb) << "key " << key;
      const bool present = it != keys.end() && *it == key;
      ASSERT_EQ(index.contains(key), present) << "key " << key;
      ASSERT_EQ(index.find(key), present ? lb : RowIndex::kNpos);
    }
    // Past-the-universe probes are misses / end().
    EXPECT_EQ(index.lower_bound(limit), keys.size());
    EXPECT_FALSE(index.contains(limit));
  }
}

/// Degenerate shapes: the empty index never hits, and construction rejects
/// unsorted, duplicate and out-of-universe keys.
TEST(RowIndexProperty, EmptyAndInvalidConstruction) {
  const RowIndex empty({}, 1ull << 30);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_FALSE(empty.contains(0));
  EXPECT_EQ(empty.find(123), RowIndex::kNpos);
  EXPECT_EQ(empty.lower_bound(0), 0u);

  const std::uint64_t unsorted[] = {9, 3};
  EXPECT_DEATH(RowIndex(unsorted, 100), "strictly increasing");
  const std::uint64_t dup[] = {3, 3};
  EXPECT_DEATH(RowIndex(dup, 100), "strictly increasing");
  const std::uint64_t outside[] = {100};
  EXPECT_DEATH(RowIndex(outside, 100), "out of universe");
}

// ---- DisturbanceTable ------------------------------------------------------

/// Counter storm against a map oracle with the same window semantics:
/// touch/increment, targeted reset, window clears and snapshot
/// capture/restore all agree with the obvious map implementation.
TEST(DisturbanceTableProperty, StormMatchesMapOracle) {
  Rng rng(0xd157);
  const dram::Geometry geometry = dram::Geometry::with_capacity(64 * kMiB);
  std::vector<std::uint64_t> weak_rows;
  for (std::uint64_t r = 0; r < geometry.total_rows(); ++r)
    if (rng.bernoulli(0.01)) weak_rows.push_back(r);
  ASSERT_FALSE(weak_rows.empty());
  const RowIndex index(weak_rows, geometry.total_rows());

  dram::DisturbanceTable table(index, geometry);
  std::map<std::size_t, std::pair<std::uint32_t, std::uint32_t>> oracle;
  std::vector<dram::DisturbanceTable::Entry> saved_entries;
  std::map<std::size_t, std::pair<std::uint32_t, std::uint32_t>> saved_oracle;
  bool have_snapshot = false;

  for (int step = 0; step < 20'000; ++step) {
    const std::size_t ordinal = rng.uniform(index.size());
    switch (rng.uniform(10)) {
      case 0: {  // refresh
        table.clear_window();
        oracle.clear();
        break;
      }
      case 1: {  // TRR-style targeted reset
        table.reset(ordinal);
        if (const auto it = oracle.find(ordinal); it != oracle.end())
          it->second = {0, 0};
        break;
      }
      case 2: {  // snapshot
        saved_entries = table.capture();
        saved_oracle = oracle;
        have_snapshot = true;
        break;
      }
      case 3: {  // rollback
        if (!have_snapshot) break;
        table.restore(saved_entries);
        oracle = saved_oracle;
        break;
      }
      default: {  // disturb one neighbour side
        const auto counters = table.touch(ordinal);
        auto& entry = oracle[ordinal];
        if (rng.bernoulli(0.5)) {
          ++counters.above;
          ++entry.first;
        } else {
          ++counters.below;
          ++entry.second;
        }
        break;
      }
    }
    // Probe a few ordinals (absent entries must read zero).
    for (int probe = 0; probe < 4; ++probe) {
      const std::size_t o = rng.uniform(index.size());
      const auto it = oracle.find(o);
      const std::uint32_t above = it == oracle.end() ? 0 : it->second.first;
      const std::uint32_t below = it == oracle.end() ? 0 : it->second.second;
      ASSERT_EQ(table.above(o), above) << "ordinal " << o;
      ASSERT_EQ(table.below(o), below) << "ordinal " << o;
    }
  }
}

/// capture() -> restore() -> capture() is a fixed point, entry for entry.
TEST(DisturbanceTableProperty, SnapshotRoundTripFixedPoint) {
  Rng rng(0xf1f0);
  const dram::Geometry geometry = dram::Geometry::with_capacity(64 * kMiB);
  std::vector<std::uint64_t> weak_rows;
  for (std::uint64_t r = 0; r < geometry.total_rows(); r += 1 + rng.uniform(50))
    weak_rows.push_back(r);
  const RowIndex index(weak_rows, geometry.total_rows());
  dram::DisturbanceTable table(index, geometry);

  for (int i = 0; i < 500; ++i) {
    const auto counters = table.touch(rng.uniform(index.size()));
    counters.above += static_cast<std::uint32_t>(rng.uniform(5));
    counters.below += static_cast<std::uint32_t>(rng.uniform(5));
  }
  table.reset(index.size() / 2);  // keep one zeroed-but-touched entry

  const auto first = table.capture();
  table.restore(first);
  const auto second = table.capture();
  EXPECT_EQ(first, second);

  // And restoring over a dirtied window still reproduces the snapshot.
  for (int i = 0; i < 200; ++i) table.touch(rng.uniform(index.size()));
  table.restore(first);
  EXPECT_EQ(table.capture(), first);
}

// ---- TrrSampler ------------------------------------------------------------

/// Sampler storm against a map oracle implementing the documented policy:
/// bounded size, deterministic coldest-entry eviction (count, then row),
/// and order-independent equality.
TEST(TrrSamplerProperty, StormMatchesMapOracle) {
  Rng rng(0x7aa5);
  constexpr std::uint32_t kCapacity = 8;
  dram::TrrSampler sampler(kCapacity);
  std::map<std::uint64_t, std::uint32_t> oracle;

  for (int step = 0; step < 30'000; ++step) {
    const std::uint64_t row = rng.uniform(40);  // small space: collisions
    switch (rng.uniform(8)) {
      case 0: {  // refresh
        sampler.clear();
        oracle.clear();
        break;
      }
      case 1: {  // intervention-style count reset
        const std::size_t slot = sampler.find(row);
        if (slot == dram::TrrSampler::kNpos) break;
        sampler.set_count(slot, 0);
        oracle[row] = 0;
        break;
      }
      default: {  // observe an activation (find-or-insert + add)
        std::size_t slot = sampler.find(row);
        if (slot == dram::TrrSampler::kNpos) {
          if (oracle.size() >= kCapacity) {
            auto coldest = oracle.begin();
            for (auto it = oracle.begin(); it != oracle.end(); ++it)
              if (it->second < coldest->second) coldest = it;
            // std::map iterates rows ascending, so the first minimum is
            // the lowest row — the documented tie-break.
            oracle.erase(coldest);
          }
          slot = sampler.insert(row);
          oracle[row] = 0;
        }
        sampler.add(slot, 1);
        ++oracle[row];
        break;
      }
    }
    ASSERT_EQ(sampler.size(), oracle.size());
    ASSERT_LE(sampler.size(), kCapacity);
    if (step % 37 == 0) {
      for (const auto& [r, count] : oracle) {
        const std::size_t slot = sampler.find(r);
        ASSERT_NE(slot, dram::TrrSampler::kNpos) << "row " << r;
        ASSERT_EQ(sampler.row(slot), r);
        ASSERT_EQ(sampler.count(slot), count);
      }
    }
  }
}

/// Equality is over (row, count) content, not slot order — the seed's
/// unordered_map had no order to preserve.
TEST(TrrSamplerProperty, EqualityIsOrderIndependent) {
  dram::TrrSampler a(8), b(8);
  a.add(a.insert(10), 3);
  a.add(a.insert(20), 5);
  b.add(b.insert(20), 5);
  b.add(b.insert(10), 3);
  EXPECT_TRUE(a == b);
  b.add(b.find(10), 1);
  EXPECT_FALSE(a == b);
  dram::TrrSampler c(4);  // same content, different capacity: not equal
  c.add(c.insert(10), 3);
  c.add(c.insert(20), 5);
  EXPECT_FALSE(a == c);
}

// ---- LiveFlipTable ---------------------------------------------------------

/// Record storm against a map-of-vectors oracle: per-row insertion order,
/// range erase on rewrite, and row_range lookups all agree.
TEST(LiveFlipTableProperty, StormMatchesMapOracle) {
  Rng rng(0x11fe);
  dram::LiveFlipTable table;
  std::map<std::uint64_t,
           std::vector<std::pair<std::uint32_t, std::uint8_t>>>
      oracle;

  for (int step = 0; step < 20'000; ++step) {
    const std::uint64_t row = rng.uniform(64);
    if (rng.bernoulli(0.7)) {  // flip a bit
      const std::uint32_t col = static_cast<std::uint32_t>(rng.uniform(256));
      const std::uint8_t bit = static_cast<std::uint8_t>(rng.uniform(8));
      table.add(row, col, bit);
      oracle[row].emplace_back(col, bit);
    } else {  // rewrite a byte range
      const std::uint64_t col = rng.uniform(256);
      const std::uint64_t len = 1 + rng.uniform(64);
      table.erase_cols(row, col, len);
      if (const auto it = oracle.find(row); it != oracle.end()) {
        auto& vec = it->second;
        std::erase_if(vec, [&](const auto& f) {
          return f.first >= col && f.first < col + len;
        });
        if (vec.empty()) oracle.erase(it);
      }
    }
    if (step % 29 == 0) {
      std::size_t total = 0;
      for (const auto& [r, records] : oracle) {
        total += records.size();
        const auto range = table.row_range(r);
        ASSERT_EQ(range.end - range.begin, records.size()) << "row " << r;
        for (std::size_t i = 0; i < records.size(); ++i) {
          ASSERT_EQ(table.col_at(range.begin + i), records[i].first);
          ASSERT_EQ(table.bit_at(range.begin + i), records[i].second);
        }
      }
      ASSERT_EQ(table.size(), total);
    }
  }
}

// ---- Device image round trip -----------------------------------------------

/// Device-level snapshot fixed point: capture -> restore -> capture yields
/// an identical image (every packed table compares equal; only the
/// mutation epoch advances, by contract).
TEST(PackedImageProperty, DeviceSnapshotRoundTripFixedPoint) {
  dram::DeviceParams params;
  params.weak_cells.cells_per_mib = 64.0;
  params.weak_cells.threshold_log_mean = 10.4;
  params.weak_cells.threshold_min = 25'000;
  params.trr.enabled = true;
  params.trr.threshold = 9'000;
  params.ecc.enabled = true;
  const dram::Geometry g = dram::Geometry::with_capacity(64 * kMiB);
  dram::DramDevice dev(g, params, 42);

  // Dirty every table: stored bytes, disturbance, TRR, flips, live flips.
  const auto rows = dev.weak_cells().vulnerable_rows();
  ASSERT_FALSE(rows.empty());
  dram::AddressMapping mapping(g, params.mapping);
  dram::DramAddress coord;
  coord.row = static_cast<std::uint32_t>(rows.front() % g.rows_per_bank);
  coord.bank = static_cast<std::uint32_t>(rows.front() / g.rows_per_bank %
                                          g.banks);
  const dram::PhysAddr victim = mapping.encode(coord);
  dev.fill(victim, 0xFF, g.row_bytes);
  if (coord.row + 1 < g.rows_per_bank) {
    auto agg = coord;
    agg.row += 1;
    const dram::PhysAddr aggs[] = {mapping.encode(agg)};
    dev.hammer_burst(aggs, 30'000);
  }
  dev.inject_flip(victim + 1, 3);
  dev.inject_flip(victim + 100, 6);

  const auto first = dev.capture_image();
  dev.restore_image(first);
  const auto second = dev.capture_image();

  EXPECT_EQ(first.open_row, second.open_row);
  EXPECT_EQ(first.disturbance, second.disturbance);
  EXPECT_TRUE(first.flips == second.flips);
  EXPECT_TRUE(first.live_flips == second.live_flips);
  EXPECT_TRUE(first.trr_sampler == second.trr_sampler);
  EXPECT_EQ(first.now, second.now);
  EXPECT_EQ(first.next_refresh, second.next_refresh);
  EXPECT_EQ(first.total_flips, second.total_flips);
  EXPECT_EQ(first.total_acts, second.total_acts);
  EXPECT_EQ(first.refreshes, second.refreshes);
  EXPECT_EQ(first.trr_hits, second.trr_hits);
  EXPECT_EQ(first.ecc_corrected, second.ecc_corrected);
  EXPECT_EQ(first.ecc_uncorrectable, second.ecc_uncorrectable);
  EXPECT_GT(second.mutation_epoch, first.mutation_epoch);  // strict advance
  ASSERT_EQ(first.rows.size(), second.rows.size());
  for (const auto& [row, bytes] : first.rows) {
    const auto it = second.rows.find(row);
    ASSERT_NE(it, second.rows.end());
    EXPECT_EQ(0, std::memcmp(bytes.get(), it->second.get(), g.row_bytes));
  }
}

}  // namespace
}  // namespace explframe
