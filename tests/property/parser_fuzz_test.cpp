// Property/fuzz tests for every text format the tools ingest: KvFile,
// scenario `.scn`, sweep `.sweep`, checkpoint PointRecord lines and
// `explsimd` JobRequest submission lines.
//
// The contract under random mutation (substitute / insert / delete /
// truncate over valid seed documents, plus raw byte soup): a parser either
// succeeds or returns nullopt with a non-empty error — it never crashes,
// CHECK-fails or loops — and whatever it accepts must survive the
// serialize -> parse round trip unchanged (the canonical-form guarantee
// the handbook and checkpoint machinery rely on).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/debug.hpp"
#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"
#include "service/protocol.hpp"
#include "support/config.hpp"
#include "support/rng.hpp"
#include "sweep/registry.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"

namespace explframe {
namespace {

constexpr int kMutationsPerSeed = 400;

/// One random edit: substitute, insert or delete a byte, or truncate.
/// Printable-heavy alphabet plus format metacharacters so mutations hit
/// parser states, not just "bad byte" rejections.
std::string mutate(const std::string& base, Rng& rng) {
  static const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 =_.-,;#\n\t";
  std::string out = base;
  const std::uint64_t kind = rng.uniform(4);
  if (out.empty() || kind == 0) {
    out.insert(out.begin() + static_cast<std::ptrdiff_t>(
                                 rng.uniform(out.size() + 1)),
               alphabet[rng.uniform(sizeof(alphabet) - 1)]);
  } else if (kind == 1) {
    out[rng.uniform(out.size())] = alphabet[rng.uniform(sizeof(alphabet) - 1)];
  } else if (kind == 2) {
    out.erase(out.begin() + static_cast<std::ptrdiff_t>(
                                rng.uniform(out.size())));
  } else {
    out.resize(rng.uniform(out.size() + 1));
  }
  return out;
}

/// A couple of stacked edits so mutations compound.
std::string mutate_some(const std::string& base, Rng& rng) {
  std::string out = base;
  const std::uint64_t edits = 1 + rng.uniform(4);
  for (std::uint64_t i = 0; i < edits; ++i) out = mutate(out, rng);
  return out;
}

TEST(ParserFuzz, KvFileNeverCrashesAndRoundTrips) {
  Rng rng(0x5eed0001);
  const std::string seed_doc =
      "# comment\nname = value\ncount = 12\nflag = true\n";
  for (int i = 0; i < kMutationsPerSeed; ++i) {
    const std::string text = mutate_some(seed_doc, rng);
    std::string error;
    const auto kv = KvFile::parse(text, &error);
    if (!kv) {
      EXPECT_FALSE(error.empty()) << "silent failure on: " << text;
      continue;
    }
    // Accepted documents are closed under serialize -> parse.
    const auto again = KvFile::parse(kv->serialize(), &error);
    ASSERT_TRUE(again.has_value()) << error;
    EXPECT_EQ(again->serialize(), kv->serialize());
  }
}

TEST(ParserFuzz, ScenarioScnNeverCrashesAndRoundTrips) {
  Rng rng(0x5eed0002);
  for (const scenario::Scenario& s : scenario::Registry::builtin().all()) {
    const std::string seed_doc = s.to_scn();
    for (int i = 0; i < kMutationsPerSeed; ++i) {
      const std::string text = mutate_some(seed_doc, rng);
      std::string error;
      const auto parsed = scenario::Scenario::from_scn(text, &error);
      if (!parsed) {
        EXPECT_FALSE(error.empty()) << "silent failure on: " << text;
        continue;
      }
      const auto again = scenario::Scenario::from_scn(parsed->to_scn(), &error);
      ASSERT_TRUE(again.has_value()) << error;
      EXPECT_EQ(*again, *parsed);
    }
  }
}

TEST(ParserFuzz, SweepSpecNeverCrashesAndRoundTrips) {
  Rng rng(0x5eed0003);
  for (const sweep::SweepSpec& spec : sweep::Registry::builtin().all()) {
    const std::string seed_doc = spec.to_sweep();
    for (int i = 0; i < kMutationsPerSeed; ++i) {
      const std::string text = mutate_some(seed_doc, rng);
      std::string error;
      const auto parsed = sweep::SweepSpec::from_sweep(text, &error);
      if (!parsed) {
        EXPECT_FALSE(error.empty()) << "silent failure on: " << text;
        continue;
      }
      const auto again =
          sweep::SweepSpec::from_sweep(parsed->to_sweep(), &error);
      ASSERT_TRUE(again.has_value()) << error;
      EXPECT_EQ(*again, *parsed);
    }
  }
}

TEST(ParserFuzz, CheckpointRecordNeverCrashesAndRoundTrips) {
  Rng rng(0x5eed0004);
  sweep::TrialRow row;
  row.template_found = true;
  row.rows_scanned = 321;
  row.flips_found = 4;
  row.steered = true;
  row.fault_injected = true;
  row.key_recovered = true;
  row.ciphertexts_used = 1700;
  row.success = true;
  row.failure_stage = "none";
  row.total_time = 123456789;
  sweep::PointRecord record;
  record.index = 7;
  record.id = "defence=trr,weak_cells=dense";
  record.trials = {row, row};
  const std::string seed_line = record.serialize();
  for (int i = 0; i < kMutationsPerSeed; ++i) {
    const std::string line = mutate_some(seed_line, rng);
    std::string error;
    const auto parsed = sweep::PointRecord::parse(line, &error);
    if (!parsed) {
      EXPECT_FALSE(error.empty()) << "silent failure on: " << line;
      continue;
    }
    const auto again = sweep::PointRecord::parse(parsed->serialize(), &error);
    ASSERT_TRUE(again.has_value()) << error;
    EXPECT_EQ(*again, *parsed);
  }
}

// The daemon's submission parser takes whatever lands in the spool
// directory — untrusted by definition. Under mutation storms over valid
// request lines it must never crash, reject with a non-empty error, and
// every accepted request must survive serialize -> parse unchanged AND
// serialize canonically (parse of a canonical line is the identity, so a
// .req file's bytes are a stable dedupe key).
TEST(ParserFuzz, JobRequestNeverCrashesAndRoundTrips) {
  Rng rng(0x5eed0007);
  const char* seed_lines[] = {
      "explsimd-request v1 kind=scenario name=quickstart",
      "explsimd-request v1 kind=sweep name=defence-grid",
      "explsimd-request v1 kind=sweep name=templating-frontier threads=4",
  };
  for (const char* seed_line : seed_lines) {
    for (int i = 0; i < kMutationsPerSeed; ++i) {
      const std::string line = mutate_some(seed_line, rng);
      std::string error;
      const auto parsed = service::JobRequest::parse(line, &error);
      if (!parsed) {
        EXPECT_FALSE(error.empty()) << "silent failure on: " << line;
        continue;
      }
      const std::string canonical = parsed->serialize();
      const auto again = service::JobRequest::parse(canonical, &error);
      ASSERT_TRUE(again.has_value()) << error;
      EXPECT_EQ(*again, *parsed);
      EXPECT_EQ(again->serialize(), canonical);
    }
  }
}

TEST(ParserFuzz, RawByteSoupIsRejectedOrParsedNeverFatal) {
  Rng rng(0x5eed0005);
  for (int i = 0; i < kMutationsPerSeed; ++i) {
    std::string soup(rng.uniform(200), '\0');
    for (char& c : soup) c = static_cast<char>(rng.uniform(256));
    std::string error;
    (void)KvFile::parse(soup, &error);
    (void)scenario::Scenario::from_scn(soup, &error);
    (void)sweep::SweepSpec::from_sweep(soup, &error);
    (void)sweep::PointRecord::parse(soup, &error);
    error.clear();
    if (!service::JobRequest::parse(soup, &error).has_value()) {
      EXPECT_FALSE(error.empty()) << "silent reject on soup " << i;
    }
  }
  SUCCEED();  // Surviving without a crash IS the property.
}

// ---- `explsim debug` REPL command parser ----------------------------------
// scenario::execute_debug_command is the full parser behind the
// interactive debugger (the binary is a readline wrapper around it). Its
// contract under arbitrary input: never crash, never CHECK-fail; every
// rejected line yields Kind::kError with a non-empty diagnostic; and no
// command storm may corrupt the session — after any sequence, rewinding
// to the base layer and replaying reproduces the bit-identical report.

TEST(ParserFuzz, DebugCommandsNeverCrashAndRejectLoudly) {
  const scenario::Scenario& s = scenario::builtin_scenario("quickstart");
  scenario::DebugSession session(s, /*trial=*/0);
  ASSERT_TRUE(session.template_found())
      << "quickstart trial 0 is expected to template (seed contract)";

  // The deterministic reference: step the trial to completion once.
  scenario::DebugSession reference(s, /*trial=*/0);
  while (!reference.done()) reference.step();

  Rng rng(0x5eed0006);
  const struct {
    const char* seed;
    int rounds;
  } seeds[] = {
      {"step", 120},          {"step 2", 120},
      {"run-until hammer", 120}, {"run-until steer", 120},
      {"rewind", 120},        {"rewind 1", 120},
      {"status", 120},        {"events", 120},
      {"help", 120},          {"quit later", 120},
      // Valid mutations of these actually bisect (restore-heavy); keep
      // the round count low so the fuzz stays fast.
      {"bisect-flip 3", 40},  {"bisect-flip 999", 40},
  };
  for (const auto& [seed_cmd, rounds] : seeds) {
    for (int i = 0; i < rounds; ++i) {
      const std::string line = mutate_some(seed_cmd, rng);
      const auto outcome = scenario::execute_debug_command(session, line);
      if (outcome.kind == scenario::DebugCommandOutcome::Kind::kError) {
        EXPECT_FALSE(outcome.output.empty()) << "silent reject on: " << line;
      }
      ASSERT_LE(session.position(), session.events().size());
    }
  }

  // Raw byte soup on top — the untrusted-stdin case.
  for (int i = 0; i < kMutationsPerSeed; ++i) {
    std::string soup(rng.uniform(32), '\0');
    for (char& c : soup) c = static_cast<char>(rng.uniform(256));
    const auto outcome = scenario::execute_debug_command(session, soup);
    if (outcome.kind == scenario::DebugCommandOutcome::Kind::kError) {
      EXPECT_FALSE(outcome.output.empty()) << "silent reject on soup " << i;
    }
    ASSERT_LE(session.position(), session.events().size());
  }

  // The storm must not have corrupted anything: rewind to the base layer,
  // replay to completion, and the report is bit-identical to the fresh
  // reference run (the debugger's time-travel determinism contract).
  std::string error;
  ASSERT_TRUE(session.rewind(session.position(), &error)) << error;
  while (!session.done()) session.step();
  EXPECT_EQ(session.report().success, reference.report().success);
  EXPECT_EQ(session.report().total_time, reference.report().total_time);
  EXPECT_EQ(session.report().recovered_key, reference.report().recovered_key);
  EXPECT_EQ(session.report().ciphertexts_used,
            reference.report().ciphertexts_used);
}

}  // namespace
}  // namespace explframe
