// Cross-module integration tests: the full stack (DRAM model, page
// allocator, demand paging, crypto service, fault analysis) exercised
// together in ways no single-module test covers.
#include <gtest/gtest.h>

#include "attack/campaign.hpp"
#include "attack/spray.hpp"
#include "kernel/noise.hpp"
#include "support/rng.hpp"

namespace explframe {
namespace {

kernel::SystemConfig integration_cfg(std::uint64_t seed) {
  kernel::SystemConfig c;
  c.memory_bytes = 64 * kMiB;
  c.num_cpus = 2;
  c.dram.weak_cells.cells_per_mib = 128.0;
  c.dram.weak_cells.threshold_log_mean = 10.4;
  c.dram.weak_cells.threshold_min = 25'000;
  c.dram.weak_cells.threshold_max = 60'000;
  c.dram.data_pattern_sensitivity = false;
  c.seed = seed;
  return c;
}

TEST(Integration, AllocatorSurvivesMultiProcessChurnWithHammering) {
  kernel::System sys(integration_cfg(3));
  kernel::Task& a = sys.spawn("proc-a", 0);
  kernel::Task& b = sys.spawn("proc-b", 1);
  kernel::NoiseWorkload na(sys, a, {}, 1);
  kernel::NoiseWorkload nb(sys, b, {}, 2);
  for (int round = 0; round < 20; ++round) {
    na.run(50);
    nb.run(50);
    sys.allocator().verify();
  }
  // Total page accounting: free + pcp + allocated == managed.
  std::uint64_t free_pages = sys.allocator().global_free_pages();
  std::uint64_t pcp = 0, managed = 0;
  for (std::size_t z = 0; z < sys.allocator().zone_count(); ++z) {
    pcp += sys.allocator().zone(z).pcp_pages();
    managed += sys.allocator().zone(z).pages();
  }
  std::uint64_t allocated = 0;
  for (mm::Pfn p = 0; p < sys.allocator().total_pages(); ++p) {
    if (sys.allocator().frames().at(p).state == mm::PageState::kAllocated)
      ++allocated;
  }
  EXPECT_EQ(free_pages + pcp + allocated, managed);
}

TEST(Integration, FlipInVictimDataVisibleThroughVirtualRead) {
  // A flip injected at the DRAM level must surface through the full
  // VA -> PTE -> PFN -> DRAM read path.
  kernel::System sys(integration_cfg(4));
  kernel::Task& t = sys.spawn("victim", 0);
  const vm::VirtAddr va = sys.sys_mmap(t, kPageSize);
  std::vector<std::uint8_t> page(kPageSize, 0xFF);
  ASSERT_TRUE(sys.mem_write(t, va, {page.data(), page.size()}));

  const auto phys = sys.phys_of(t, va + 100);
  sys.dram().write_byte(phys, 0x7F);  // simulate flip of bit 7

  std::uint8_t out = 0;
  ASSERT_TRUE(sys.mem_read(t, va + 100, {&out, 1}));
  EXPECT_EQ(out, 0x7F);
}

TEST(Integration, ExplFrameBeatsSprayBaseline) {
  // The paper's headline comparison at small scale: targeted ExplFrame
  // corrupts the victim where blind spraying does not.
  std::size_t explframe_hits = 0;
  std::size_t spray_hits = 0;
  std::size_t attempts = 0;
  for (std::uint64_t seed = 10; seed < 14; ++seed) {
    {
      kernel::System sys(integration_cfg(seed));
      attack::CampaignConfig cfg;
      cfg.templating.buffer_bytes = 4 * kMiB;
      cfg.templating.hammer_iterations = 100'000;
      cfg.ciphertext_budget = 1;  // corruption only; skip full PFA here
      cfg.seed = seed;
      attack::ExplFrameCampaign attack(sys, cfg);
      const auto r = attack.run();
      if (!r.template_found) continue;
      ++attempts;
      explframe_hits += r.fault_injected ? 1 : 0;
    }
    {
      kernel::System sys(integration_cfg(seed));
      attack::SprayConfig cfg;
      cfg.buffer_bytes = 4 * kMiB;
      cfg.hammer_iterations = 100'000;
      cfg.pairs = 8;
      cfg.seed = seed;
      attack::SprayBaseline spray(sys, cfg);
      spray_hits += spray.run().victim_corrupted ? 1 : 0;
    }
  }
  ASSERT_GT(attempts, 0u);
  EXPECT_GT(explframe_hits, spray_hits);
}

TEST(Integration, SprayStillFlipsSomewhere) {
  // Blind hammering does produce flips — just not in the victim.
  kernel::System sys(integration_cfg(20));
  attack::SprayConfig cfg;
  cfg.buffer_bytes = 4 * kMiB;
  cfg.hammer_iterations = 100'000;
  cfg.pairs = 16;
  attack::SprayBaseline spray(sys, cfg);
  const auto report = spray.run();
  EXPECT_GT(report.flips_anywhere, 0u);
}

TEST(Integration, RefreshPreventsFlipsAtLowRate) {
  // Hammering spread over many refresh windows never accumulates enough
  // disturbance — the defence DRAM vendors rely on.
  kernel::System sys(integration_cfg(5));
  kernel::Task& t = sys.spawn("slow-hammer", 0);
  const vm::VirtAddr va = sys.sys_mmap(t, 64 * kPageSize);
  for (int p = 0; p < 64; ++p) {
    const std::uint8_t b = 0xFF;
    ASSERT_TRUE(sys.mem_write(t, va + p * kPageSize, {&b, 1}));
  }
  sys.dram().drain_flips();
  // Same-bank pair one bank-sweep apart: every access is an activation.
  const std::uint64_t stride =
      static_cast<std::uint64_t>(sys.dram().geometry().row_bytes) *
      sys.dram().geometry().banks;
  const auto acts_before = sys.dram().total_activations();
  // Pair deep inside the buffer (the first pages are contiguity outliers).
  const vm::VirtAddr lo = va + 2 * stride;
  const vm::VirtAddr hi = lo + stride;
  // ~1400 activations per window (well under every threshold), many windows.
  for (int w = 0; w < 20; ++w) {
    for (int i = 0; i < 700; ++i) {
      sys.uncached_access(t, lo);
      sys.uncached_access(t, hi);
    }
    sys.idle(70 * kMillisecond);
  }
  EXPECT_GT(sys.dram().total_activations(), acts_before + 20000);
  EXPECT_EQ(sys.dram().drain_flips().size(), 0u);
}

}  // namespace
}  // namespace explframe
