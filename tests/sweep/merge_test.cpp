// Fault-injection suite for checkpoint merge and resume: torn final
// lines, duplicated records (identical → dedupe, conflicting → hard
// error), foreign spec hashes, and a kill-9 mid-shard followed by
// --resume — every failure mode the sharded workflow can meet on a real
// disk, each pinned to its contracted behaviour.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "scenario/registry.hpp"
#include "support/check.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"

namespace explframe::sweep {
namespace {

const scenario::Registry& scenarios() {
  return scenario::Registry::builtin();
}

/// Small but real grid: 2x2 points x 2 trials of the quickstart attack.
SweepSpec tiny_spec() {
  const auto spec = SweepSpec::from_sweep(
      "name = tiny-grid\n"
      "title = Tiny test grid\n"
      "base = quickstart\n"
      "base.trials = 2\n"
      "axis.defence = none,trr\n"
      "axis.max_rows = 24,48\n");
  EXPLFRAME_CHECK(spec.has_value());
  return *spec;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

/// The checkpoint header line the runner writes for `spec`.
std::string header_line(const SweepSpec& spec) {
  const char* digits = "0123456789abcdef";
  std::uint64_t h = spec.spec_hash(scenarios());
  std::string hex(16, '0');
  for (int i = 15; i >= 0; --i, h >>= 4) hex[i] = digits[h & 0xf];
  return "explsim-sweep-checkpoint v1 sweep=" + spec.name +
         " spec_hash=" + hex;
}

/// Write a checkpoint file holding `records` (plus an optional torn tail).
std::string write_checkpoint(const std::string& name, const SweepSpec& spec,
                             const std::vector<PointRecord>& records,
                             const std::string& torn_tail = "") {
  const std::string path = temp_path(name);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << header_line(spec) << "\n";
  for (const PointRecord& record : records) out << record.serialize() << "\n";
  out << torn_tail;  // No newline: a mid-write crash artifact.
  return path;
}

/// The reference run every fault scenario is measured against.
const SweepResult& fresh() {
  static const SweepResult result = [] {
    const auto run = run_sweep(tiny_spec(), scenarios(), {});
    EXPLFRAME_CHECK(run.has_value());
    return *run;
  }();
  return result;
}

TEST(MergeFaults, TornFinalLineIsDroppedWhenItsPointIsCoveredElsewhere) {
  const SweepSpec spec = tiny_spec();
  const auto& records = fresh().records;
  // Shard A logged points 0+2 and died re-writing point 2's line; shard B
  // holds 1+3. The torn fragment must vanish, not corrupt the merge.
  const std::string a = write_checkpoint(
      "torn-a.ckpt", spec, {records[0], records[2]},
      records[2].serialize().substr(0, 25));
  const std::string b =
      write_checkpoint("torn-b.ckpt", spec, {records[1], records[3]});
  std::string error;
  const auto merged = merge_checkpoints(spec, scenarios(), {a, b}, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(merged->records, records);
  EXPECT_EQ(sweep_markdown(*merged), sweep_markdown(fresh()));
  EXPECT_EQ(sweep_csv(*merged), sweep_csv(fresh()));
}

TEST(MergeFaults, TornOnlyCopyOfAPointIsAMissingPointError) {
  const SweepSpec spec = tiny_spec();
  const auto& records = fresh().records;
  // Point 3's only record is the torn fragment: the merge must name it.
  const std::string a = write_checkpoint(
      "torn-only-a.ckpt", spec, {records[0], records[2]});
  const std::string b = write_checkpoint(
      "torn-only-b.ckpt", spec, {records[1]},
      records[3].serialize().substr(0, 30));
  std::string error;
  EXPECT_FALSE(merge_checkpoints(spec, scenarios(), {a, b}, &error));
  EXPECT_NE(error.find("missing"), std::string::npos) << error;
  EXPECT_NE(error.find(records[3].id), std::string::npos) << error;
}

TEST(MergeFaults, IdenticalDuplicatesDedupeAcrossAndWithinFiles) {
  const SweepSpec spec = tiny_spec();
  const auto& records = fresh().records;
  // Point 1 appears in both files; point 2 twice in one file (a requeued
  // job re-logging its work). Byte-identical copies are harmless.
  const std::string a = write_checkpoint(
      "dup-a.ckpt", spec, {records[0], records[1], records[2], records[2]});
  const std::string b =
      write_checkpoint("dup-b.ckpt", spec, {records[1], records[3]});
  std::string error;
  const auto merged = merge_checkpoints(spec, scenarios(), {a, b}, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(merged->records, records);
}

TEST(MergeFaults, ConflictingDuplicateAcrossFilesIsAHardError) {
  const SweepSpec spec = tiny_spec();
  const auto& records = fresh().records;
  PointRecord tampered = records[1];
  tampered.trials[0].rows_scanned += 1;  // Same point, different result.
  const std::string a = write_checkpoint(
      "conflict-a.ckpt", spec, {records[0], records[1]});
  const std::string b = write_checkpoint(
      "conflict-b.ckpt", spec, {tampered, records[2], records[3]});
  std::string error;
  EXPECT_FALSE(merge_checkpoints(spec, scenarios(), {a, b}, &error));
  EXPECT_NE(error.find("conflicting"), std::string::npos) << error;
}

TEST(MergeFaults, ConflictingDuplicateWithinOneFileIsAHardError) {
  const SweepSpec spec = tiny_spec();
  const auto& records = fresh().records;
  PointRecord tampered = records[0];
  tampered.trials[1].flips_found += 7;
  const std::string a = write_checkpoint(
      "conflict-within.ckpt", spec,
      {records[0], tampered, records[1], records[2], records[3]});
  std::string error;
  EXPECT_FALSE(merge_checkpoints(spec, scenarios(), {a}, &error));
  EXPECT_NE(error.find("conflicting"), std::string::npos) << error;
}

TEST(MergeFaults, ForeignSpecHashIsRefused) {
  const SweepSpec spec = tiny_spec();
  const auto& records = fresh().records;
  const std::string good =
      write_checkpoint("foreign-good.ckpt", spec, records);
  const std::string foreign = temp_path("foreign-bad.ckpt");
  {
    std::ofstream out(foreign, std::ios::binary | std::ios::trunc);
    out << "explsim-sweep-checkpoint v1 sweep=tiny-grid "
        << "spec_hash=0123456789abcdef\n";
  }
  std::string error;
  EXPECT_FALSE(
      merge_checkpoints(spec, scenarios(), {good, foreign}, &error));
  EXPECT_NE(error.find("spec_hash"), std::string::npos) << error;
}

TEST(MergeFaults, MissingShardIsAnErrorNamingThePoints) {
  const SweepSpec spec = tiny_spec();
  const auto& records = fresh().records;
  // Only shard 1-of-2 (points 0 and 2): the merge must list 1 and 3.
  const std::string a = write_checkpoint(
      "half.ckpt", spec, {records[0], records[2]});
  std::string error;
  EXPECT_FALSE(merge_checkpoints(spec, scenarios(), {a}, &error));
  EXPECT_NE(error.find("2 point(s) missing"), std::string::npos) << error;
  EXPECT_NE(error.find(records[1].id), std::string::npos) << error;
  EXPECT_NE(error.find(records[3].id), std::string::npos) << error;
}

TEST(MergeFaults, UnreadableCheckpointIsAnError) {
  std::string error;
  EXPECT_FALSE(merge_checkpoints(tiny_spec(), scenarios(),
                                 {temp_path("no-such-file.ckpt")}, &error));
  EXPECT_NE(error.find("cannot read"), std::string::npos) << error;
}

TEST(MergeFaults, EmptyCheckpointListIsAnError) {
  std::string error;
  EXPECT_FALSE(merge_checkpoints(tiny_spec(), scenarios(), {}, &error));
  EXPECT_FALSE(error.empty());
}

// The kill-9 drill: a shard dies mid-write, the retry resumes from the
// surviving prefix, and the final merge is byte-identical to a run that
// never crashed. This is the daemon's crash-recovery path end to end.
TEST(MergeFaults, KillNineMidShardThenResumeCompletesByteIdentical) {
  const SweepSpec spec = tiny_spec();

  // Run shard 1-of-2 to completion, then simulate the kill: truncate the
  // file to the header, one durable record, and a torn fragment.
  const std::string shard0 = temp_path("kill9-shard0.ckpt");
  std::filesystem::remove(shard0);
  SweepRunOptions options;
  options.checkpoint_path = shard0;
  options.shard_index = 0;
  options.shard_count = 2;
  std::string error;
  {
    const auto full = run_sweep(spec, scenarios(), options, &error);
    ASSERT_TRUE(full.has_value()) << error;
    ASSERT_EQ(full->records.size(), 2u);
    std::ofstream out(shard0, std::ios::binary | std::ios::trunc);
    out << header_line(spec) << "\n"
        << full->records[0].serialize() << "\n"
        << full->records[1].serialize().substr(0, 40);
  }

  // The retry: same shard, --resume. The durable point is served from
  // the log, the torn one reruns.
  options.resume = true;
  std::size_t resumed = 0;
  options.on_point = [&](const SweepPoint&, const PointRecord&,
                         bool was_resumed) {
    if (was_resumed) resumed += 1;
  };
  const auto retried = run_sweep(spec, scenarios(), options, &error);
  ASSERT_TRUE(retried.has_value()) << error;
  EXPECT_EQ(resumed, 1u);
  EXPECT_TRUE(std::filesystem::exists(shard0));  // Shards keep their log.

  // Shard 2-of-2 never crashed.
  SweepRunOptions other;
  other.checkpoint_path = temp_path("kill9-shard1.ckpt");
  std::filesystem::remove(other.checkpoint_path);
  other.shard_index = 1;
  other.shard_count = 2;
  ASSERT_TRUE(run_sweep(spec, scenarios(), other, &error)) << error;

  const auto merged = merge_checkpoints(
      spec, scenarios(), {shard0, other.checkpoint_path}, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(merged->records, fresh().records);
  EXPECT_EQ(sweep_markdown(*merged), sweep_markdown(fresh()));
  EXPECT_EQ(sweep_csv(*merged), sweep_csv(fresh()));
}

}  // namespace
}  // namespace explframe::sweep
