// sweep::SweepRunner — execution, checkpoint round-trip and resume-equals-
// fresh guarantees.
#include "sweep/runner.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "scenario/registry.hpp"
#include "support/check.hpp"
#include "sweep/spec.hpp"

namespace explframe::sweep {
namespace {

const scenario::Registry& scenarios() {
  return scenario::Registry::builtin();
}

/// Small but real grid: 2x2 points x 2 trials of the quickstart attack.
SweepSpec tiny_spec() {
  const auto spec = SweepSpec::from_sweep(
      "name = tiny-grid\n"
      "title = Tiny test grid\n"
      "base = quickstart\n"
      "base.trials = 2\n"
      "axis.defence = none,trr\n"
      "axis.max_rows = 24,48\n");
  EXPLFRAME_CHECK(spec.has_value());
  return *spec;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

/// The checkpoint header line the runner writes for `spec`.
std::string header_line(const SweepSpec& spec) {
  const char* digits = "0123456789abcdef";
  std::uint64_t h = spec.spec_hash(scenarios());
  std::string hex(16, '0');
  for (int i = 15; i >= 0; --i, h >>= 4) hex[i] = digits[h & 0xf];
  return "explsim-sweep-checkpoint v1 sweep=" + spec.name +
         " spec_hash=" + hex;
}

TEST(SweepRunner, RunsEveryPointInIndexOrder) {
  const SweepSpec spec = tiny_spec();
  std::string error;
  const auto result = run_sweep(spec, scenarios(), {}, &error);
  ASSERT_TRUE(result.has_value()) << error;
  ASSERT_EQ(result->records.size(), 4u);
  for (std::size_t i = 0; i < result->records.size(); ++i) {
    EXPECT_EQ(result->records[i].index, i);
    EXPECT_EQ(result->records[i].id, result->points[i].id);
    EXPECT_EQ(result->records[i].trials.size(), 2u);
  }
  EXPECT_EQ(result->resumed_points, 0u);
}

TEST(SweepRunner, ResultsAreIndependentOfThreadCount) {
  const SweepSpec spec = tiny_spec();
  SweepRunOptions serial;
  serial.threads = 1;
  SweepRunOptions wide;
  wide.threads = 8;
  const auto a = run_sweep(spec, scenarios(), serial);
  const auto b = run_sweep(spec, scenarios(), wide);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->records, b->records);
}

TEST(PointRecord, SerializesAndParsesLosslessly) {
  const auto result = run_sweep(tiny_spec(), scenarios(), {});
  ASSERT_TRUE(result.has_value());
  for (const PointRecord& record : result->records) {
    std::string error;
    const auto reparsed = PointRecord::parse(record.serialize(), &error);
    ASSERT_TRUE(reparsed.has_value()) << error;
    EXPECT_EQ(*reparsed, record);
  }
}

TEST(PointRecord, ParseRejectsMalformedLines) {
  std::string error;
  EXPECT_FALSE(PointRecord::parse("pt 0 id 1,2", &error).has_value());
  EXPECT_FALSE(PointRecord::parse("point x id 1,2", &error).has_value());
  EXPECT_FALSE(PointRecord::parse("point 0 id", &error).has_value());
  // Wrong trial field count / non-numeric fields.
  EXPECT_FALSE(PointRecord::parse("point 0 id 1,2,3", &error).has_value());
  EXPECT_FALSE(
      PointRecord::parse("point 0 id 1,2,3,4,5,6,7,8,9,10,stage,x", &error)
          .has_value());
}

TEST(SweepRunner, WritesAndRemovesCheckpoint) {
  const std::string path = temp_path("complete.ckpt");
  std::filesystem::remove(path);
  SweepRunOptions options;
  options.checkpoint_path = path;
  const auto result = run_sweep(tiny_spec(), scenarios(), options);
  ASSERT_TRUE(result.has_value());
  // A completed sweep has nothing to resume: the checkpoint is gone.
  EXPECT_FALSE(std::filesystem::exists(path));
}

// The acceptance-criteria invariant: a run resumed from a partial
// checkpoint produces records equal to an uninterrupted run, point for
// point and trial for trial — which is what makes the emitted CSV and
// markdown byte-identical.
TEST(SweepRunner, ResumeEqualsFreshPerPoint) {
  const SweepSpec spec = tiny_spec();
  const auto fresh = run_sweep(spec, scenarios(), {});
  ASSERT_TRUE(fresh.has_value());

  const std::string path = temp_path("partial.ckpt");
  std::filesystem::remove(path);

  // Simulate an interrupted run: only points 0 and 2 made it to the log,
  // and the process died while writing point 3's line.
  {
    std::ofstream out(path, std::ios::binary);
    out << header_line(spec) << "\n";
    out << fresh->records[0].serialize() << "\n";
    out << fresh->records[2].serialize() << "\n";
    // A torn final line (the mid-write crash): silently dropped.
    out << "point 3 defence=trr,max_rows=48 1,2";
  }

  SweepRunOptions options;
  options.checkpoint_path = path;
  options.resume = true;
  std::size_t executed = 0;
  std::size_t resumed = 0;
  options.on_point = [&](const SweepPoint&, const PointRecord&,
                         bool was_resumed) {
    (was_resumed ? resumed : executed) += 1;
  };
  std::string error;
  const auto again = run_sweep(spec, scenarios(), options, &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(resumed, 2u);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(again->resumed_points, 2u);
  EXPECT_EQ(again->records, fresh->records);
  EXPECT_FALSE(std::filesystem::exists(path));
}

// A resume that is itself interrupted must not corrupt the log: the first
// resume truncates the torn fragment before appending, so every line a
// later resume reads is well-formed. (Regression: "ab" used to append the
// next record directly onto the torn fragment, merging two lines and
// making the checkpoint permanently unloadable.)
TEST(SweepRunner, ResumeAfterTornLineLeavesLoadableCheckpoint) {
  const SweepSpec spec = tiny_spec();
  const auto fresh = run_sweep(spec, scenarios(), {});
  ASSERT_TRUE(fresh.has_value());

  const std::string path = temp_path("torn-twice.ckpt");
  std::filesystem::remove(path);
  {
    std::ofstream out(path, std::ios::binary);
    out << header_line(spec) << "\n";
    out << fresh->records[0].serialize() << "\n";
    out << "point 1 defence=trr,max_";  // Torn mid-write, no newline.
  }

  SweepRunOptions options;
  options.checkpoint_path = path;
  options.resume = true;
  options.remove_checkpoint_on_success = false;  // Keep the file to audit.
  std::string error;
  const auto resumed = run_sweep(spec, scenarios(), options, &error);
  ASSERT_TRUE(resumed.has_value()) << error;
  EXPECT_EQ(resumed->resumed_points, 1u);
  EXPECT_EQ(resumed->records, fresh->records);

  // The completed log must parse cleanly — all 4 points, no merged lines.
  const auto reloaded =
      load_checkpoint(path, spec.name, spec.spec_hash(scenarios()), &error);
  ASSERT_TRUE(reloaded.has_value()) << error;
  EXPECT_EQ(reloaded->size(), 4u);
  std::filesystem::remove(path);
}

TEST(SweepRunner, ResumeRejectsForeignCheckpoint) {
  const SweepSpec spec = tiny_spec();
  const std::string path = temp_path("foreign.ckpt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "explsim-sweep-checkpoint v1 sweep=tiny-grid "
        << "spec_hash=0123456789abcdef\n";
  }
  SweepRunOptions options;
  options.checkpoint_path = path;
  options.resume = true;
  std::string error;
  EXPECT_FALSE(run_sweep(spec, scenarios(), options, &error).has_value());
  EXPECT_NE(error.find("spec_hash does not match"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(SweepRunner, ResumeRejectsCorruptMiddleRecord) {
  const SweepSpec spec = tiny_spec();
  const auto fresh = run_sweep(spec, scenarios(), {});
  ASSERT_TRUE(fresh.has_value());
  const std::string path = temp_path("corrupt.ckpt");
  {
    std::ofstream out(path, std::ios::binary);
    out << header_line(spec) << "\n";
    out << "garbage line\n";
    out << fresh->records[1].serialize() << "\n";
  }
  SweepRunOptions options;
  options.checkpoint_path = path;
  options.resume = true;
  std::string error;
  EXPECT_FALSE(run_sweep(spec, scenarios(), options, &error).has_value());
  std::filesystem::remove(path);
}

TEST(SweepRunner, WithoutResumeAnExistingCheckpointIsTruncated) {
  const SweepSpec spec = tiny_spec();
  const std::string path = temp_path("stale.ckpt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "explsim-sweep-checkpoint v1 sweep=other spec_hash=ffff\n";
  }
  SweepRunOptions options;
  options.checkpoint_path = path;
  options.resume = false;  // Fresh run: the stale file must not matter.
  std::string error;
  const auto result = run_sweep(spec, scenarios(), options, &error);
  ASSERT_TRUE(result.has_value()) << error;
  EXPECT_EQ(result->resumed_points, 0u);
}

TEST(Checkpoint, LoadTreatsMissingFileAsEmpty) {
  std::string error;
  const auto records = load_checkpoint(temp_path("does-not-exist.ckpt"),
                                       "any", 7, &error);
  ASSERT_TRUE(records.has_value()) << error;
  EXPECT_TRUE(records->empty());
}

}  // namespace
}  // namespace explframe::sweep
