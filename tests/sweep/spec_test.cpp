// sweep::SweepSpec — .sweep parsing, axis expansion and grid determinism.
#include "sweep/spec.hpp"

#include <gtest/gtest.h>

#include "scenario/registry.hpp"
#include "sweep/registry.hpp"

namespace explframe::sweep {
namespace {

const scenario::Registry& scenarios() {
  return scenario::Registry::builtin();
}

/// A small valid sweep used as the mutation baseline.
constexpr const char* kValidSweep =
    "name = mini-grid\n"
    "title = Minimal grid\n"
    "base = quickstart\n"
    "base.trials = 2\n"
    "axis.defence = none,trr\n"
    "axis.hammer_iterations = 1000:4000:x2\n";

TEST(AxisValues, ExpandsCommaLists) {
  const auto values = expand_axis_values("none, trr ,ecc,trr+ecc");
  ASSERT_TRUE(values.has_value());
  EXPECT_EQ(*values,
            (std::vector<std::string>{"none", "trr", "ecc", "trr+ecc"}));
}

TEST(AxisValues, ExpandsGeometricRangesInclusive) {
  const auto values = expand_axis_values("1000:64000:x2");
  ASSERT_TRUE(values.has_value());
  EXPECT_EQ(*values, (std::vector<std::string>{"1000", "2000", "4000",
                                               "8000", "16000", "32000",
                                               "64000"}));
  // hi not landed on exactly: stop below it.
  EXPECT_EQ(*expand_axis_values("10:50:x3"),
            (std::vector<std::string>{"10", "30"}));
}

TEST(AxisValues, ExpandsLinearRangesInclusive) {
  EXPECT_EQ(*expand_axis_values("16:64:+16"),
            (std::vector<std::string>{"16", "32", "48", "64"}));
  EXPECT_EQ(*expand_axis_values("5:6:+10"), (std::vector<std::string>{"5"}));
  EXPECT_EQ(*expand_axis_values("0:10:+5"),
            (std::vector<std::string>{"0", "5", "10"}));
}

TEST(AxisValues, RejectsMalformedAndEmptyRanges) {
  std::string error;
  EXPECT_FALSE(expand_axis_values("64:16:+8", &error).has_value());
  EXPECT_NE(error.find("empty range"), std::string::npos);
  EXPECT_FALSE(expand_axis_values("1:10:x1", &error).has_value());
  // lo=0 never advances under a geometric factor: rejected up front.
  EXPECT_FALSE(expand_axis_values("0:64000:x2", &error).has_value());
  EXPECT_NE(error.find("lo >= 1"), std::string::npos);
  EXPECT_FALSE(expand_axis_values("1:10:+0", &error).has_value());
  EXPECT_FALSE(expand_axis_values("1:10:*2", &error).has_value());
  EXPECT_FALSE(expand_axis_values("1:10", &error).has_value());
  EXPECT_FALSE(expand_axis_values("1:2:3:x4", &error).has_value());
  EXPECT_FALSE(expand_axis_values("a:10:x2", &error).has_value());
  EXPECT_FALSE(expand_axis_values("1:1000000000:+1", &error).has_value())
      << "axis value cap";
}

TEST(AxisValues, RejectsBadListEntries) {
  std::string error;
  EXPECT_FALSE(expand_axis_values("", &error).has_value());
  EXPECT_FALSE(expand_axis_values("a,,b", &error).has_value());
  EXPECT_FALSE(expand_axis_values("a,b,a", &error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
  EXPECT_FALSE(expand_axis_values("a b,c", &error).has_value());
}

TEST(SweepSpec, ParsesAndRoundTrips) {
  std::string error;
  const auto spec = SweepSpec::from_sweep(kValidSweep, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->name, "mini-grid");
  EXPECT_EQ(spec->base, "quickstart");
  EXPECT_EQ(spec->seed_mode, SeedMode::kDerived);
  ASSERT_EQ(spec->axes.size(), 2u);
  EXPECT_EQ(spec->axes[0].key, "defence");
  EXPECT_EQ(spec->axes[1].values,
            (std::vector<std::string>{"1000", "2000", "4000"}));
  EXPECT_EQ(spec->point_count(), 6u);

  // Canonical serialization is a fixed point (ranges normalize to lists).
  const auto reparsed = SweepSpec::from_sweep(spec->to_sweep(), &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(*reparsed, *spec);
  EXPECT_EQ(reparsed->to_sweep(), spec->to_sweep());
}

TEST(SweepSpec, RejectsMalformedSpecs) {
  std::string error;
  // Missing identity / base / axes.
  EXPECT_FALSE(SweepSpec::from_sweep("title = t\nbase = quickstart\n"
                                     "axis.trials = 1,2\n",
                                     &error)
                   .has_value());
  EXPECT_FALSE(SweepSpec::from_sweep("name = x\nbase = quickstart\n"
                                     "axis.trials = 1,2\n",
                                     &error)
                   .has_value());
  EXPECT_FALSE(SweepSpec::from_sweep("name = x\ntitle = t\n"
                                     "axis.trials = 1,2\n",
                                     &error)
                   .has_value());
  EXPECT_FALSE(
      SweepSpec::from_sweep("name = x\ntitle = t\nbase = quickstart\n",
                            &error)
          .has_value());
  EXPECT_NE(error.find("at least one axis"), std::string::npos);
  // Unknown top-level key.
  EXPECT_FALSE(SweepSpec::from_sweep("name = x\ntitle = t\n"
                                     "base = quickstart\nbogus = 1\n"
                                     "axis.trials = 1,2\n",
                                     &error)
                   .has_value());
  EXPECT_NE(error.find("unknown key 'bogus'"), std::string::npos);
  // Unknown seed mode.
  EXPECT_FALSE(SweepSpec::from_sweep("name = x\ntitle = t\n"
                                     "base = quickstart\nseed_mode = fixed\n"
                                     "axis.trials = 1,2\n",
                                     &error)
                   .has_value());
  // Reserved keys can be neither swept nor overridden.
  EXPECT_FALSE(SweepSpec::from_sweep("name = x\ntitle = t\n"
                                     "base = quickstart\naxis.seed = 1,2\n",
                                     &error)
                   .has_value());
  EXPECT_FALSE(SweepSpec::from_sweep("name = x\ntitle = t\n"
                                     "base = quickstart\nbase.name = y\n"
                                     "axis.trials = 1,2\n",
                                     &error)
                   .has_value());
  // Swept and overridden at once.
  EXPECT_FALSE(SweepSpec::from_sweep("name = x\ntitle = t\n"
                                     "base = quickstart\nbase.trials = 4\n"
                                     "axis.trials = 1,2\n",
                                     &error)
                   .has_value());
  EXPECT_NE(error.find("both overridden"), std::string::npos);
  // A line that is not a key=value pair is a KvFile parse error.
  EXPECT_FALSE(SweepSpec::from_sweep("name = x\ntitle = t\n"
                                     "base = quickstart\n"
                                     "axis.trials = 1,2\naxis.seed\n",
                                     &error)
                   .has_value());
  // More than 3 axes.
  EXPECT_FALSE(SweepSpec::from_sweep(
                   "name = x\ntitle = t\nbase = quickstart\n"
                   "axis.trials = 1,2\naxis.threads = 1,2\n"
                   "axis.noise_ops = 0,1\naxis.memory_mib = 64,128\n",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("at most 3 axes"), std::string::npos);
  // Duplicate axis keys are duplicate KvFile keys.
  EXPECT_FALSE(SweepSpec::from_sweep("name = x\ntitle = t\n"
                                     "base = quickstart\n"
                                     "axis.trials = 1,2\naxis.trials = 3,4\n",
                                     &error)
                   .has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
  // Malformed axis value syntax is attributed to its key.
  EXPECT_FALSE(SweepSpec::from_sweep("name = x\ntitle = t\n"
                                     "base = quickstart\n"
                                     "axis.trials = 4:1:x2\n",
                                     &error)
                   .has_value());
  EXPECT_NE(error.find("axis.trials"), std::string::npos);
}

TEST(SweepSpec, ExpandRejectsUnknownBaseAndAxisKeys) {
  std::string error;
  const auto unknown_base = SweepSpec::from_sweep(
      "name = x\ntitle = t\nbase = no-such-scenario\naxis.trials = 1,2\n");
  ASSERT_TRUE(unknown_base.has_value());
  EXPECT_FALSE(unknown_base->expand(scenarios(), &error).has_value());
  EXPECT_NE(error.find("no registered scenario"), std::string::npos);

  // An unknown axis key parses (syntax is fine) but cannot expand.
  const auto unknown_axis = SweepSpec::from_sweep(
      "name = x\ntitle = t\nbase = quickstart\naxis.hammer_budget = 1,2\n");
  ASSERT_TRUE(unknown_axis.has_value());
  EXPECT_FALSE(unknown_axis->expand(scenarios(), &error).has_value());
  EXPECT_NE(error.find("hammer_budget"), std::string::npos);

  // An unknown override key likewise.
  const auto unknown_override = SweepSpec::from_sweep(
      "name = x\ntitle = t\nbase = quickstart\nbase.bogus = 1\n"
      "axis.trials = 1,2\n");
  ASSERT_TRUE(unknown_override.has_value());
  EXPECT_FALSE(unknown_override->expand(scenarios(), &error).has_value());
  EXPECT_NE(error.find("base.bogus"), std::string::npos);

  // A well-formed axis with a value the scenario schema rejects.
  const auto bad_value = SweepSpec::from_sweep(
      "name = x\ntitle = t\nbase = quickstart\naxis.defence = none,tsr\n");
  ASSERT_TRUE(bad_value.has_value());
  EXPECT_FALSE(bad_value->expand(scenarios(), &error).has_value());
  EXPECT_NE(error.find("tsr"), std::string::npos);
}

TEST(SweepSpec, ExpansionIsDeterministicRowMajor) {
  const auto spec = SweepSpec::from_sweep(kValidSweep);
  ASSERT_TRUE(spec.has_value());
  std::string error;
  const auto points = spec->expand(scenarios(), &error);
  ASSERT_TRUE(points.has_value()) << error;
  ASSERT_EQ(points->size(), 6u);

  // Row-major, last axis fastest; ids and names are stable.
  EXPECT_EQ((*points)[0].id, "defence=none,hammer_iterations=1000");
  EXPECT_EQ((*points)[1].id, "defence=none,hammer_iterations=2000");
  EXPECT_EQ((*points)[3].id, "defence=trr,hammer_iterations=1000");
  EXPECT_EQ((*points)[5].id, "defence=trr,hammer_iterations=4000");
  EXPECT_EQ((*points)[5].scenario.name, "mini-grid.p05");
  EXPECT_EQ((*points)[5].scenario.title, (*points)[5].id);

  // The axes landed in the point scenarios; the override applied first.
  EXPECT_EQ((*points)[3].scenario.defence, scenario::Defence::kTrr);
  EXPECT_EQ((*points)[1].scenario.hammer_iterations, 2000u);
  EXPECT_EQ((*points)[0].scenario.trials, 2u);

  // Expansion twice gives identical grids (pure function of the spec).
  const auto again = spec->expand(scenarios(), &error);
  ASSERT_TRUE(again.has_value());
  for (std::size_t i = 0; i < points->size(); ++i) {
    EXPECT_EQ((*again)[i].id, (*points)[i].id);
    EXPECT_EQ((*again)[i].scenario, (*points)[i].scenario);
  }
}

TEST(SweepSpec, SeedModesShareOrDerivePointSeeds) {
  const auto base_seed = scenarios().find("quickstart")->seed;
  const auto derived = SweepSpec::from_sweep(kValidSweep);
  ASSERT_TRUE(derived.has_value());
  const auto derived_points = derived->expand(scenarios());
  ASSERT_TRUE(derived_points.has_value());
  for (std::size_t i = 0; i < derived_points->size(); ++i) {
    EXPECT_EQ((*derived_points)[i].scenario.seed,
              derive_point_seed(base_seed, i));
    for (std::size_t j = i + 1; j < derived_points->size(); ++j)
      EXPECT_NE((*derived_points)[i].scenario.seed,
                (*derived_points)[j].scenario.seed);
  }

  const auto shared = SweepSpec::from_sweep(
      std::string(kValidSweep) + "seed_mode = shared\n");
  ASSERT_TRUE(shared.has_value());
  const auto shared_points = shared->expand(scenarios());
  ASSERT_TRUE(shared_points.has_value());
  for (const SweepPoint& point : *shared_points)
    EXPECT_EQ(point.scenario.seed, base_seed);
}

TEST(SweepSpec, SpecHashCoversSpecAndBaseScenario) {
  const auto a = SweepSpec::from_sweep(kValidSweep);
  ASSERT_TRUE(a.has_value());
  const std::uint64_t hash = a->spec_hash(scenarios());
  EXPECT_EQ(hash, a->spec_hash(scenarios()));

  // Any spec edit — including a seed override — moves the hash.
  auto b = *a;
  b.base_overrides.emplace_back("ciphertext_budget", "9000");
  EXPECT_NE(b.spec_hash(scenarios()), hash);
  auto c = *a;
  c.seed_mode = SeedMode::kShared;
  EXPECT_NE(c.spec_hash(scenarios()), hash);
  auto d = *a;
  d.axes[0].values.push_back("ecc");
  EXPECT_NE(d.spec_hash(scenarios()), hash);
}

TEST(SweepRegistry, BuiltinsExpandRoundTripAndAreUnique) {
  const Registry& reg = Registry::builtin();
  EXPECT_GE(reg.all().size(), 4u);
  EXPECT_NE(reg.find("aes-budget-curve"), nullptr);
  EXPECT_NE(reg.find("present-budget-curve"), nullptr);
  EXPECT_NE(reg.find("defence-grid"), nullptr);
  EXPECT_NE(reg.find("templating-frontier"), nullptr);
  EXPECT_EQ(reg.find("no-such-sweep"), nullptr);

  for (const SweepSpec& spec : reg.all()) {
    EXPECT_EQ(reg.find(spec.name), &spec);
    EXPECT_FALSE(spec.title.empty()) << spec.name;
    EXPECT_FALSE(spec.description.empty()) << spec.name;
    std::string error;
    const auto points = spec.expand(scenarios(), &error);
    ASSERT_TRUE(points.has_value()) << spec.name << ": " << error;
    EXPECT_GE(points->size(), 4u) << spec.name;
    const auto reparsed = SweepSpec::from_sweep(spec.to_sweep(), &error);
    ASSERT_TRUE(reparsed.has_value()) << spec.name << ": " << error;
    EXPECT_EQ(*reparsed, spec) << spec.name;
  }
}

TEST(SweepRegistryDeathTest, BuiltinSweepLookupChecks) {
  EXPECT_EQ(builtin_sweep("defence-grid").base, "defence-none");
  EXPECT_DEATH(builtin_sweep("nope"), "no such built-in sweep");
}

}  // namespace
}  // namespace explframe::sweep
