// sweep::report — byte-stable emitters and golden-drift detection.
#include "sweep/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "scenario/registry.hpp"
#include "support/check.hpp"
#include "sweep/spec.hpp"

namespace explframe::sweep {
namespace {

const scenario::Registry& scenarios() {
  return scenario::Registry::builtin();
}

SweepSpec tiny_spec() {
  const auto spec = SweepSpec::from_sweep(
      "name = tiny-grid\n"
      "title = Tiny test grid\n"
      "base = quickstart\n"
      "base.trials = 2\n"
      "axis.defence = none,trr\n"
      "axis.max_rows = 24,48\n");
  EXPLFRAME_CHECK(spec.has_value());
  return *spec;
}

SweepResult run_tiny(std::uint32_t threads) {
  SweepRunOptions options;
  options.threads = threads;
  const auto result = run_sweep(tiny_spec(), scenarios(), options);
  EXPLFRAME_CHECK(result.has_value());
  return *result;
}

TEST(SweepReport, EmittersAreByteStableAcrossThreadCounts) {
  const SweepResult serial = run_tiny(1);
  const SweepResult wide = run_tiny(8);
  EXPECT_EQ(sweep_csv(serial), sweep_csv(wide));
  EXPECT_EQ(sweep_markdown(serial), sweep_markdown(wide));
  EXPECT_EQ(sweeps_index({serial}), sweeps_index({wide}));
}

TEST(SweepReport, CsvIsLongFormWithAxisColumns) {
  const SweepResult result = run_tiny(2);
  const std::string csv = sweep_csv(result);
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "point,defence,max_rows,trial,template_found,rows_scanned,"
            "flips_found,steered,fault_injected,fault_as_predicted,"
            "key_recovered,ciphertexts_used,residual_search,success,"
            "failure_stage,sim_seconds");
  // One header + 4 points x 2 trials.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 9);
  EXPECT_NE(csv.find("\n0,none,24,0,"), std::string::npos);
  EXPECT_NE(csv.find("\n3,trr,48,1,"), std::string::npos);
}

TEST(SweepReport, MarkdownContainsGridMarginalsAndPivot) {
  const SweepResult result = run_tiny(2);
  const std::string md = sweep_markdown(result);
  EXPECT_NE(md.find("## Configuration"), std::string::npos);
  EXPECT_NE(md.find("axis.defence = none,trr"), std::string::npos);
  EXPECT_NE(md.find("## Grid"), std::string::npos);
  EXPECT_NE(md.find("## Marginal: `defence`"), std::string::npos);
  EXPECT_NE(md.find("## Marginal: `max_rows`"), std::string::npos);
  EXPECT_NE(md.find("## Success pivot: `defence` x `max_rows`"),
            std::string::npos);
  // Wall-clock values never appear in generated reports.
  EXPECT_EQ(md.find("wall"), std::string::npos);
}

// The `explsim sweep all --check` contract: a matching directory is clean;
// any drifted byte, missing file or orphan is one reported issue.
TEST(SweepReport, CheckDetectsDriftMissingAndOrphans) {
  const SweepResult result = run_tiny(2);
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "sweep-goldens")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const auto files = sweep_files({result}, dir);
  ASSERT_EQ(files.size(), 3u);  // md + csv + README.md
  for (const auto& [path, content] : files) {
    std::ofstream out(path, std::ios::binary);
    out << content;
  }
  EXPECT_TRUE(check_generated_files(files, dir).empty());

  // One flipped byte -> DRIFT.
  {
    std::ofstream out(files[0].first, std::ios::binary | std::ios::app);
    out << "x";
  }
  auto issues = check_generated_files(files, dir);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("DRIFT"), std::string::npos);
  EXPECT_NE(issues[0].find(files[0].first), std::string::npos);

  // Deleted golden -> MISSING; stray report -> ORPHAN.
  std::filesystem::remove(files[0].first);
  {
    std::ofstream out(dir + "/stale-sweep.md", std::ios::binary);
    out << "old\n";
  }
  issues = check_generated_files(files, dir);
  ASSERT_EQ(issues.size(), 2u);
  EXPECT_NE(issues[0].find("MISSING"), std::string::npos);
  EXPECT_NE(issues[1].find("ORPHAN"), std::string::npos);
  EXPECT_NE(issues[1].find("stale-sweep.md"), std::string::npos);

  std::filesystem::remove_all(dir);
}

// Resume and fresh runs feed the emitters the same records, so the files
// (the acceptance criterion's CSV/markdown) are byte-identical.
TEST(SweepReport, ResumedRunEmitsIdenticalBytes) {
  const SweepSpec spec = tiny_spec();
  const auto fresh = run_sweep(spec, scenarios(), {});
  ASSERT_TRUE(fresh.has_value());

  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "report-resume.ckpt")
          .string();
  std::filesystem::remove(path);
  // Run once with checkpointing but keep the file (simulating a kill after
  // the last point would leave nothing to test, so stop deletion instead).
  SweepRunOptions first;
  first.checkpoint_path = path;
  first.remove_checkpoint_on_success = false;
  ASSERT_TRUE(run_sweep(spec, scenarios(), first).has_value());
  ASSERT_TRUE(std::filesystem::exists(path));

  // Resume against the complete checkpoint: zero points execute, and the
  // emitted bytes match the fresh run exactly.
  SweepRunOptions second;
  second.checkpoint_path = path;
  second.resume = true;
  std::string error;
  const auto resumed = run_sweep(spec, scenarios(), second, &error);
  ASSERT_TRUE(resumed.has_value()) << error;
  EXPECT_EQ(resumed->resumed_points, resumed->records.size());
  EXPECT_EQ(sweep_csv(*resumed), sweep_csv(*fresh));
  EXPECT_EQ(sweep_markdown(*resumed), sweep_markdown(*fresh));
  EXPECT_FALSE(std::filesystem::exists(path));
}

}  // namespace
}  // namespace explframe::sweep
