// Shard-equivalence differential suite: for EVERY builtin grid, runs
// split 1, 2 and 3 ways — with interleaved shard completion orders and
// shuffled merge orders — must merge to records equal to the unsharded
// run and to report bytes identical to the committed goldens under
// docs/results/sweeps/. This is the contract that makes `explsim sweep
// all --shard=I/N` + `--merge-from` a drop-in replacement for the
// single-process run CI verifies with `sweep all --check`.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/registry.hpp"
#include "sweep/registry.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"

namespace explframe::sweep {
namespace {

const scenario::Registry& scenarios() {
  return scenario::Registry::builtin();
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The committed golden for `name` (.md or .csv) — the unsharded bytes
/// `explsim sweep all` generated and CI pins.
std::string golden(const std::string& name, const std::string& ext) {
  const std::string path = std::string(EXPLFRAME_SOURCE_DIR) +
                           "/docs/results/sweeps/" + name + "." + ext;
  const auto text = read_file(path);
  EXPECT_TRUE(text.has_value()) << "missing golden " << path;
  return text.value_or("");
}

/// Run shard `index` of `count` for `spec`, keeping the checkpoint.
/// Returns the checkpoint path (empty string on failure, already logged).
std::string run_shard(const SweepSpec& spec, std::uint32_t index,
                      std::uint32_t count) {
  const std::string path =
      temp_path(spec.name + ".shard-" + std::to_string(index + 1) + "-of-" +
                std::to_string(count) + ".ckpt");
  std::filesystem::remove(path);
  SweepRunOptions options;
  options.checkpoint_path = path;
  options.shard_index = index;
  options.shard_count = count;
  // Only the 1-way case would delete its checkpoint; keep it so every
  // shard count feeds merge_checkpoints the same way.
  options.remove_checkpoint_on_success = false;
  std::string error;
  const auto result = run_sweep(spec, scenarios(), options, &error);
  EXPECT_TRUE(result.has_value())
      << spec.name << " shard " << index + 1 << "/" << count << ": " << error;
  if (!result) return "";
  EXPECT_EQ(result->shard_count, count);
  return path;
}

TEST(ShardEquivalence, EveryBuiltinGridMatchesGoldensAtOneTwoThreeShards) {
  for (const SweepSpec& spec : Registry::builtin().all()) {
    SCOPED_TRACE(spec.name);
    const std::string golden_md = golden(spec.name, "md");
    const std::string golden_csv = golden(spec.name, "csv");

    std::vector<PointRecord> reference;  // From the 1-shard merge.
    for (const std::uint32_t count : {1u, 2u, 3u}) {
      SCOPED_TRACE("shards=" + std::to_string(count));
      // Interleave completion: finish the LAST shard first, then the
      // rest — no shard may depend on a sibling having run before it.
      std::vector<std::string> paths(count);
      for (std::uint32_t k = 0; k < count; ++k) {
        const std::uint32_t index = (k + count - 1) % count;
        paths[index] = run_shard(spec, index, count);
        ASSERT_FALSE(paths[index].empty());
      }

      // Merge order must not matter either: feed the files reversed.
      const std::vector<std::string> reversed(paths.rbegin(), paths.rend());
      std::string error;
      const auto merged =
          merge_checkpoints(spec, scenarios(), reversed, &error);
      ASSERT_TRUE(merged.has_value()) << error;
      ASSERT_TRUE(merged->complete());

      if (count == 1) {
        reference = merged->records;
      } else {
        // Record-level equality: every point, every trial, every field.
        EXPECT_EQ(merged->records, reference);
      }
      // Byte-level equality against the committed unsharded goldens.
      EXPECT_EQ(sweep_markdown(*merged), golden_md);
      EXPECT_EQ(sweep_csv(*merged), golden_csv);

      for (const std::string& path : paths) std::filesystem::remove(path);
    }
  }
}

// The round-robin partition itself: disjoint, exhaustive, index-ordered.
TEST(ShardEquivalence, ShardsPartitionThePointsDisjointly) {
  const SweepSpec& spec = Registry::builtin().all().front();
  constexpr std::uint32_t kShards = 3;
  std::vector<std::size_t> owner_count;
  for (std::uint32_t index = 0; index < kShards; ++index) {
    const std::string path = run_shard(spec, index, kShards);
    ASSERT_FALSE(path.empty());
    std::string error;
    const auto records = load_checkpoint(path, spec.name,
                                         spec.spec_hash(scenarios()), &error);
    ASSERT_TRUE(records.has_value()) << error;
    for (const PointRecord& record : *records) {
      EXPECT_EQ(record.index % kShards, index);
      if (record.index >= owner_count.size())
        owner_count.resize(record.index + 1, 0);
      owner_count[record.index] += 1;
    }
    std::filesystem::remove(path);
  }
  std::string error;
  const auto points = spec.expand(scenarios(), &error);
  ASSERT_TRUE(points.has_value()) << error;
  ASSERT_EQ(owner_count.size(), points->size());
  for (const std::size_t count : owner_count) EXPECT_EQ(count, 1u);
}

}  // namespace
}  // namespace explframe::sweep
