// tests/race/ — the multi-rank giant-geometry leg of the TSan surface.
//
// The packed-SoA DRAM state exists to make multi-GB modules affordable, so
// the thread-count-invariance contract must hold on exactly those shapes:
// an 8 GiB module is the smallest capacity Geometry::with_capacity spreads
// across multiple ranks, which moves bank/rank arithmetic, the weak-cell
// RowIndex directory and the per-bank disturbance slabs into ranges a
// single-rank test never reaches. Campaign runs at 1/4/hardware threads
// and concurrently forked trial groups must produce byte-identical
// reports; under -DEXPLFRAME_SANITIZE=thread the same traffic doubles as
// the race audit of the packed tables' snapshot/fork paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "attack/campaign_runner.hpp"
#include "dram/geometry.hpp"
#include "scenario/registry.hpp"
#include "scenario/report.hpp"
#include "support/units.hpp"

namespace explframe::attack {
namespace {

constexpr std::uint64_t kGiantBytes = 8ull << 30;  // smallest multi-rank

std::uint32_t hardware_threads() {
  return std::max(2u, std::thread::hardware_concurrency());
}

/// The quickstart attack rebased onto the 8 GiB module, with enough trials
/// that a wide pool's workers each run several.
RunnerConfig giant_config(std::uint32_t threads) {
  RunnerConfig cfg = scenario::builtin_scenario("quickstart").runner_config();
  cfg.system.memory_bytes = kGiantBytes;
  cfg.trials = std::max<std::uint32_t>(6, hardware_threads());
  cfg.threads = threads;
  return cfg;
}

/// Collapse an aggregate to the byte-stable emitter output (markdown +
/// CSV; wall-clock is excluded by the emitters themselves).
std::string deterministic_digest(const CampaignAggregate& aggregate) {
  scenario::ScenarioResult result;
  result.scenario = scenario::builtin_scenario("quickstart");
  result.aggregate = aggregate;
  return scenario::markdown_report(result) + "\n" +
         scenario::csv_report(result);
}

TEST(GiantGeometryRace, CapacitySpreadsAcrossRanks) {
  // Guard the premise: if with_capacity ever stops adding ranks at this
  // size, the suite below silently loses its multi-rank coverage.
  const dram::Geometry g = dram::Geometry::with_capacity(kGiantBytes);
  EXPECT_GT(g.ranks, 1u);
  EXPECT_EQ(g.total_bytes(), kGiantBytes);
}

TEST(GiantGeometryRace, ReportsByteIdenticalAcrossThreadCounts) {
  const std::string serial =
      deterministic_digest(CampaignRunner(giant_config(1)).run());
  for (const std::uint32_t threads : {4u, hardware_threads()}) {
    const std::string wide =
        deterministic_digest(CampaignRunner(giant_config(threads)).run());
    EXPECT_EQ(serial, wide) << "thread count " << threads
                            << " changed emitted report bytes";
  }
}

TEST(GiantGeometryRace, ConcurrentTrialGroupsForkIdentically) {
  // Snapshot-forked trial families on the multi-rank module: each lane
  // templates one 8 GiB machine, snapshots it and forks a 3-variant
  // group, so the packed arenas' capture/restore runs under maximum
  // cross-thread pressure.
  const RunnerConfig base = giant_config(1);
  std::vector<CampaignConfig> variants;
  for (const std::uint32_t budget : {1500u, 4000u, 8000u}) {
    CampaignConfig cfg = base.campaign;
    cfg.ciphertext_budget = budget;
    variants.push_back(cfg);
  }
  const std::vector<CampaignReport> expected =
      CampaignRunner::run_trial_group(base, variants, /*trial=*/0);
  ASSERT_EQ(expected.size(), variants.size());

  const std::uint32_t lanes = hardware_threads();
  std::vector<std::vector<CampaignReport>> got(lanes);
  {
    std::vector<std::thread> pool;
    pool.reserve(lanes);
    for (std::uint32_t i = 0; i < lanes; ++i)
      pool.emplace_back([&base, &variants, &got, i] {
        got[i] = CampaignRunner::run_trial_group(base, variants, /*trial=*/0);
      });
    for (auto& t : pool) t.join();
  }
  for (std::uint32_t i = 0; i < lanes; ++i) {
    ASSERT_EQ(got[i].size(), expected.size()) << "lane " << i;
    for (std::size_t v = 0; v < expected.size(); ++v) {
      EXPECT_EQ(got[i][v].success, expected[v].success);
      EXPECT_EQ(got[i][v].total_time, expected[v].total_time);
      EXPECT_EQ(got[i][v].ciphertexts_used, expected[v].ciphertexts_used);
      EXPECT_EQ(got[i][v].recovered_key, expected[v].recovered_key);
      EXPECT_EQ(got[i][v].rows_scanned, expected[v].rows_scanned);
    }
  }
}

}  // namespace
}  // namespace explframe::attack
