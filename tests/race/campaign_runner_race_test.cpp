// tests/race/ — the TSan stress surface for the trial engine.
//
// These tests are correctness tests in every build (thread-count
// invariance is the determinism contract PR 3's goldens rest on), but
// their real job is to give the TSan CI leg (-DEXPLFRAME_SANITIZE=thread)
// dense cross-thread traffic: many workers forking trials off shared
// snapshots, hammering the runner's queue, aggregate merge and progress
// paths at the highest thread count the host offers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "attack/campaign_runner.hpp"
#include "scenario/registry.hpp"
#include "scenario/report.hpp"

namespace explframe::attack {
namespace {

std::uint32_t hardware_threads() {
  return std::max(2u, std::thread::hardware_concurrency());
}

/// The quickstart attack with enough trials that every worker of a wide
/// pool actually runs several, so queue hand-off and aggregate merging see
/// real contention under TSan.
RunnerConfig stress_config(std::uint32_t threads) {
  RunnerConfig cfg = scenario::builtin_scenario("quickstart").runner_config();
  cfg.trials = std::max<std::uint32_t>(12, 2 * hardware_threads());
  cfg.threads = threads;
  return cfg;
}

/// Collapse an aggregate to the fields the byte-stable emitters publish
/// (everything except host wall-clock, which parallelism is allowed to
/// change).
std::string deterministic_digest(const CampaignAggregate& aggregate) {
  scenario::ScenarioResult result;
  result.scenario = scenario::builtin_scenario("quickstart");
  result.aggregate = aggregate;
  return scenario::markdown_report(result) + "\n" +
         scenario::csv_report(result);
}

TEST(CampaignRunnerRace, ReportsByteIdenticalAcrossThreadCounts) {
  const std::string serial =
      deterministic_digest(CampaignRunner(stress_config(1)).run());
  for (const std::uint32_t threads : {4u, hardware_threads()}) {
    const std::string wide =
        deterministic_digest(CampaignRunner(stress_config(threads)).run());
    EXPECT_EQ(serial, wide) << "thread count " << threads
                            << " changed emitted report bytes";
  }
}

TEST(CampaignRunnerRace, ConcurrentRunnersDoNotInterfere) {
  // Several full runners in flight at once — the shape explsimd will have.
  // Each runner owns its own Systems, so the only shared state is hidden
  // globals (logging, AES-NI dispatch, registry singletons); TSan audits
  // exactly those.
  const std::string expected =
      deterministic_digest(CampaignRunner(stress_config(2)).run());
  constexpr int kRunners = 3;
  std::vector<std::string> digests(kRunners);
  {
    std::vector<std::thread> pool;
    pool.reserve(kRunners);
    for (int i = 0; i < kRunners; ++i)
      pool.emplace_back([&digests, i] {
        digests[i] =
            deterministic_digest(CampaignRunner(stress_config(2)).run());
      });
    for (auto& t : pool) t.join();
  }
  for (int i = 0; i < kRunners; ++i)
    EXPECT_EQ(digests[i], expected) << "concurrent runner " << i << " drifted";
}

TEST(CampaignRunnerRace, ConcurrentTrialGroupsForkIdentically) {
  // Snapshot-forked trial groups on many threads at once: each thread
  // templates one machine, snapshots it and forks a 3-variant family —
  // the run_trial_group machinery under maximum concurrency.
  const RunnerConfig base = stress_config(1);
  std::vector<CampaignConfig> variants;
  for (const std::uint32_t budget : {1500u, 4000u, 8000u}) {
    CampaignConfig cfg = base.campaign;
    cfg.ciphertext_budget = budget;
    variants.push_back(cfg);
  }
  const std::vector<CampaignReport> expected =
      CampaignRunner::run_trial_group(base, variants, /*trial=*/0);
  ASSERT_EQ(expected.size(), variants.size());

  const std::uint32_t lanes = hardware_threads();
  std::vector<std::vector<CampaignReport>> got(lanes);
  {
    std::vector<std::thread> pool;
    pool.reserve(lanes);
    for (std::uint32_t i = 0; i < lanes; ++i)
      pool.emplace_back([&base, &variants, &got, i] {
        got[i] = CampaignRunner::run_trial_group(base, variants, /*trial=*/0);
      });
    for (auto& t : pool) t.join();
  }
  for (std::uint32_t i = 0; i < lanes; ++i) {
    ASSERT_EQ(got[i].size(), expected.size()) << "lane " << i;
    for (std::size_t v = 0; v < expected.size(); ++v) {
      EXPECT_EQ(got[i][v].success, expected[v].success);
      EXPECT_EQ(got[i][v].total_time, expected[v].total_time);
      EXPECT_EQ(got[i][v].ciphertexts_used, expected[v].ciphertexts_used);
      EXPECT_EQ(got[i][v].recovered_key, expected[v].recovered_key);
      EXPECT_EQ(got[i][v].rows_scanned, expected[v].rows_scanned);
    }
  }
}

}  // namespace
}  // namespace explframe::attack
