// tests/race/ — SweepRunner under the race-detector leg.
//
// The sweep engine's guarantee is one level up from CampaignRunner's: the
// emitted grid records (and therefore the CSV/markdown goldens) must be
// byte-identical at any worker count, with template-sharing groups forking
// trials off shared snapshots. These tests drive that machinery at the
// host's full thread count so the TSan CI leg watches the work-stealing
// queue, the per-point record table, checkpoint appends and the progress
// callback lock under real contention.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "scenario/registry.hpp"
#include "support/check.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"

namespace explframe::sweep {
namespace {

const scenario::Registry& scenarios() {
  return scenario::Registry::builtin();
}

std::uint32_t hardware_threads() {
  return std::max(2u, std::thread::hardware_concurrency());
}

/// A shared-seed grid over post-template axes: every point of a column
/// agrees on template_key + seed + trials, so the runner actually forms
/// multi-point groups and forks them from one snapshot per trial.
SweepSpec grouped_spec() {
  const auto spec = SweepSpec::from_sweep(
      "name = race-grid\n"
      "title = TSan stress grid\n"
      "base = quickstart\n"
      "base.trials = 2\n"
      "seed_mode = shared\n"
      "axis.ciphertext_budget = 1500,3000,6000,12000\n"
      "axis.defence = none,trr\n");
  EXPLFRAME_CHECK(spec.has_value());
  return *spec;
}

/// The byte-stable projection of a finished sweep (wall clock excluded).
std::string deterministic_digest(const SweepResult& result) {
  return sweep_csv(result) + "\n" + sweep_markdown(result);
}

TEST(SweepRunnerRace, RecordsAndReportBytesInvariantAcrossThreadCounts) {
  const SweepSpec spec = grouped_spec();
  SweepRunOptions serial;
  serial.threads = 1;
  const auto reference = run_sweep(spec, scenarios(), serial);
  ASSERT_TRUE(reference.has_value());
  const std::string expected = deterministic_digest(*reference);

  for (const std::uint32_t threads : {4u, hardware_threads()}) {
    SweepRunOptions wide;
    wide.threads = threads;
    const auto result = run_sweep(spec, scenarios(), wide);
    ASSERT_TRUE(result.has_value()) << "threads " << threads;
    EXPECT_EQ(result->records, reference->records)
        << "threads " << threads << " changed the record table";
    EXPECT_EQ(deterministic_digest(*result), expected)
        << "threads " << threads << " changed emitted bytes";
  }
}

TEST(SweepRunnerRace, SharedTemplatesMatchUnsharedAtFullWidth) {
  const SweepSpec spec = grouped_spec();
  SweepRunOptions shared;
  shared.threads = hardware_threads();
  shared.share_templates = true;
  SweepRunOptions unshared;
  unshared.threads = hardware_threads();
  unshared.share_templates = false;
  const auto a = run_sweep(spec, scenarios(), shared);
  const auto b = run_sweep(spec, scenarios(), unshared);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->records, b->records);
}

TEST(SweepRunnerRace, ConcurrentCheckpointedSweepsStayIsolated) {
  // Two checkpointed sweeps of the same spec in flight at once, each with
  // its own checkpoint file — the explsimd shape. Appends/fsyncs must not
  // bleed across runs and both must emit the reference bytes.
  const SweepSpec spec = grouped_spec();
  const auto reference = run_sweep(spec, scenarios(), {});
  ASSERT_TRUE(reference.has_value());

  constexpr int kRuns = 2;
  std::vector<std::optional<SweepResult>> results(kRuns);
  {
    std::vector<std::thread> pool;
    for (int i = 0; i < kRuns; ++i)
      pool.emplace_back([&spec, &results, i] {
        SweepRunOptions options;
        options.threads = 4;
        options.checkpoint_path =
            (std::filesystem::path(::testing::TempDir()) /
             ("race_ckpt_" + std::to_string(i) + ".txt"))
                .string();
        results[i] = run_sweep(spec, scenarios(), options);
      });
    for (auto& t : pool) t.join();
  }
  for (int i = 0; i < kRuns; ++i) {
    ASSERT_TRUE(results[i].has_value()) << "run " << i;
    EXPECT_EQ(results[i]->records, reference->records) << "run " << i;
  }
}

}  // namespace
}  // namespace explframe::sweep
