#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace explframe {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t({"name", "value"});
  t.row("alpha", 1);
  t.row("beta", 2);
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ColumnsAligned) {
  Table t({"a", "long-header"});
  t.row("xxxxxxxxxx", 1);
  const std::string out = t.render();
  // Every line between rules must have the same length.
  std::istringstream is(out);
  std::string line;
  std::size_t len = 0;
  while (std::getline(is, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len);
  }
}

TEST(Table, DoubleFormattingTrimsZeros) {
  EXPECT_EQ(Table::to_cell(1.5), "1.5");
  EXPECT_EQ(Table::to_cell(2.0), "2.0");
  EXPECT_EQ(Table::to_cell(0.125), "0.125");
}

TEST(Table, DoubleFormattingScientificForExtremes) {
  const std::string tiny = Table::to_cell(1e-9);
  EXPECT_NE(tiny.find('e'), std::string::npos);
  const std::string huge = Table::to_cell(3.2e12);
  EXPECT_NE(huge.find('e'), std::string::npos);
}

TEST(Table, PercentFormatting) {
  EXPECT_EQ(Table::percent(0.5), "50.0%");
  EXPECT_EQ(Table::percent(1.0, 0), "100%");
  EXPECT_EQ(Table::percent(0.987, 2), "98.70%");
}

TEST(Table, BoolCells) {
  EXPECT_EQ(Table::to_cell(true), "yes");
  EXPECT_EQ(Table::to_cell(false), "no");
}

TEST(Table, BannerContainsTitle) {
  std::ostringstream os;
  print_banner(os, "EXP-T1");
  EXPECT_NE(os.str().find("EXP-T1"), std::string::npos);
}

}  // namespace
}  // namespace explframe
