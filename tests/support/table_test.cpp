#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace explframe {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t({"name", "value"});
  t.row("alpha", 1);
  t.row("beta", 2);
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ColumnsAligned) {
  Table t({"a", "long-header"});
  t.row("xxxxxxxxxx", 1);
  const std::string out = t.render();
  // Every line between rules must have the same length.
  std::istringstream is(out);
  std::string line;
  std::size_t len = 0;
  while (std::getline(is, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len);
  }
}

TEST(Table, DoubleFormattingTrimsZeros) {
  EXPECT_EQ(Table::to_cell(1.5), "1.5");
  EXPECT_EQ(Table::to_cell(2.0), "2.0");
  EXPECT_EQ(Table::to_cell(0.125), "0.125");
}

TEST(Table, DoubleFormattingScientificForExtremes) {
  const std::string tiny = Table::to_cell(1e-9);
  EXPECT_NE(tiny.find('e'), std::string::npos);
  const std::string huge = Table::to_cell(3.2e12);
  EXPECT_NE(huge.find('e'), std::string::npos);
}

TEST(Table, PercentFormatting) {
  EXPECT_EQ(Table::percent(0.5), "50.0%");
  EXPECT_EQ(Table::percent(1.0, 0), "100%");
  EXPECT_EQ(Table::percent(0.987, 2), "98.70%");
}

TEST(Table, BoolCells) {
  EXPECT_EQ(Table::to_cell(true), "yes");
  EXPECT_EQ(Table::to_cell(false), "no");
}

TEST(Table, MarkdownRendering) {
  Table t({"phase", "rate"});
  t.row("steer | hammer", 1);  // pipe must be escaped in cells
  t.row("analyse", 2);
  const std::string out = t.render(TableFormat::kMarkdown);
  EXPECT_EQ(out, "| phase | rate |\n"
                 "| --- | --- |\n"
                 "| steer \\| hammer | 1 |\n"
                 "| analyse | 2 |\n");
}

TEST(Table, CsvRendering) {
  Table t({"name", "value"});
  t.row("plain", 1);
  t.row("with, comma", 2);
  t.add_row({"with \"quote\"", "3"});
  const std::string out = t.render(TableFormat::kCsv);
  EXPECT_EQ(out, "name,value\n"
                 "plain,1\n"
                 "\"with, comma\",2\n"
                 "\"with \"\"quote\"\"\",3\n");
}

TEST(Table, CsvEscapesNewlinesAndHeaders) {
  // Failure-stage names such as "steer, no frame" and free-form notes with
  // embedded newlines must not corrupt the CSV structure; headers go
  // through the same escaping as body cells.
  Table t({"failure, stage", "count"});
  t.row("steer, no frame", 3);
  t.add_row({"line1\nline2", "4"});
  const std::string out = t.render(TableFormat::kCsv);
  EXPECT_EQ(out, "\"failure, stage\",count\n"
                 "\"steer, no frame\",3\n"
                 "\"line1\nline2\",4\n");
}

TEST(Table, PrintHonoursFormat) {
  Table t({"a"});
  t.row(1);
  std::ostringstream ascii, csv;
  t.print(ascii);
  t.print(csv, TableFormat::kCsv);
  EXPECT_NE(ascii.str().find('+'), std::string::npos);
  EXPECT_EQ(csv.str(), "a\n1\n");
}

TEST(Table, ParseFormat) {
  EXPECT_EQ(parse_table_format("ascii"), TableFormat::kAscii);
  EXPECT_EQ(parse_table_format("markdown"), TableFormat::kMarkdown);
  EXPECT_EQ(parse_table_format("md"), TableFormat::kMarkdown);
  EXPECT_EQ(parse_table_format("csv"), TableFormat::kCsv);
  EXPECT_EQ(parse_table_format("nonsense", TableFormat::kMarkdown),
            TableFormat::kMarkdown);
  EXPECT_EQ(try_parse_table_format("csv"), TableFormat::kCsv);
  EXPECT_EQ(try_parse_table_format("nonsense"), std::nullopt);
  EXPECT_EQ(try_parse_table_format(""), std::nullopt);
}

TEST(Table, BannerContainsTitle) {
  std::ostringstream os;
  print_banner(os, "EXP-T1");
  EXPECT_NE(os.str().find("EXP-T1"), std::string::npos);
}

}  // namespace
}  // namespace explframe
