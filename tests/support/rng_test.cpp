#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

namespace explframe {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(99);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next());
  a.reseed(99);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  EXPECT_EQ(rng.uniform(0), 0u);
  EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_range(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, FillBytesFillsEverything) {
  Rng rng(41);
  std::array<std::uint8_t, 37> buf{};
  rng.fill_bytes(buf);
  // All-zero after fill is astronomically unlikely.
  int nonzero = 0;
  for (const auto b : buf)
    if (b != 0) ++nonzero;
  EXPECT_GT(nonzero, 20);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(55);
  Rng child = a.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == child.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, GeometricZeroWhenCertain) {
  Rng rng(61);
  EXPECT_EQ(rng.geometric(1.0), 0u);
  // With p = 0.5 the mean number of failures is 1.
  double total = 0;
  for (int i = 0; i < 5000; ++i) total += static_cast<double>(rng.geometric(0.5));
  EXPECT_NEAR(total / 5000.0, 1.0, 0.1);
}

}  // namespace
}  // namespace explframe
