#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace explframe {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
}

TEST(Samples, SingleElement) {
  Samples s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(Samples, EmptySetIsDefinedZero) {
  // An empty sample set (e.g. ciphertexts_used with zero successful trials)
  // must report zeros everywhere, not crash or return garbage.
  const Samples s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 0.0);
}

TEST(Samples, AddAfterPercentileInvalidatesCache) {
  Samples s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.max(), 2.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 2.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 10.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(-5.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(9), 10.0);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1);
  h.add(0.9);
  h.add(0.95);
  const std::string out = h.render();
  EXPECT_NE(out.find('1'), std::string::npos);
  EXPECT_NE(out.find('2'), std::string::npos);
}

TEST(WilsonInterval, ContainsPointEstimate) {
  const auto ci = wilson_interval(30, 100);
  EXPECT_NEAR(ci.p, 0.3, 1e-12);
  EXPECT_LT(ci.lo, 0.3);
  EXPECT_GT(ci.hi, 0.3);
  EXPECT_GE(ci.lo, 0.0);
  EXPECT_LE(ci.hi, 1.0);
}

TEST(WilsonInterval, EdgeCases) {
  const auto zero = wilson_interval(0, 50);
  EXPECT_DOUBLE_EQ(zero.p, 0.0);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);

  const auto all = wilson_interval(50, 50);
  EXPECT_DOUBLE_EQ(all.p, 1.0);
  EXPECT_LT(all.lo, 1.0);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);

  const auto none = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(none.lo, 0.0);
  EXPECT_DOUBLE_EQ(none.hi, 1.0);
}

TEST(WilsonInterval, NarrowsWithMoreTrials) {
  const auto small = wilson_interval(5, 10);
  const auto large = wilson_interval(500, 1000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

}  // namespace
}  // namespace explframe
