// KvFile / KvReader — the `.scn` key=value layer under the scenario files.
#include "support/config.hpp"

#include <gtest/gtest.h>

namespace explframe {
namespace {

TEST(KvFile, ParsesPairsCommentsAndBlanks) {
  const std::string text =
      "# a scenario\n"
      "\n"
      "cipher = aes128\n"
      "  trials=8\n"
      "title = Spaces  inside the value are kept\n";
  std::string error;
  const auto kv = KvFile::parse(text, &error);
  ASSERT_TRUE(kv.has_value()) << error;
  EXPECT_EQ(kv->size(), 3u);
  ASSERT_NE(kv->find("cipher"), nullptr);
  EXPECT_EQ(*kv->find("cipher"), "aes128");
  ASSERT_NE(kv->find("trials"), nullptr);
  EXPECT_EQ(*kv->find("trials"), "8");
  EXPECT_EQ(*kv->find("title"), "Spaces  inside the value are kept");
  EXPECT_EQ(kv->find("absent"), nullptr);
}

TEST(KvFile, EmptyValueIsAllowed) {
  const auto kv = KvFile::parse("paper_ref =\n");
  ASSERT_TRUE(kv.has_value());
  EXPECT_EQ(*kv->find("paper_ref"), "");
}

TEST(KvFile, RejectsLineWithoutEquals) {
  std::string error;
  EXPECT_FALSE(KvFile::parse("cipher aes128\n", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_NE(error.find("key = value"), std::string::npos);
}

TEST(KvFile, RejectsBadKeys) {
  std::string error;
  EXPECT_FALSE(KvFile::parse("= 3\n", &error).has_value());
  EXPECT_FALSE(KvFile::parse("two words = 3\n", &error).has_value());
  EXPECT_FALSE(KvFile::parse("k$y = 3\n", &error).has_value());
}

TEST(KvFile, RejectsDuplicateKeyWithLineNumber) {
  std::string error;
  EXPECT_FALSE(
      KvFile::parse("trials = 8\n# gap\ntrials = 9\n", &error).has_value());
  EXPECT_NE(error.find("line 3"), std::string::npos);
  EXPECT_NE(error.find("duplicate key 'trials'"), std::string::npos);
}

TEST(KvFile, SerializeRoundTripsCanonically) {
  KvFile kv;
  kv.set("b", "2");
  kv.set("a", "1");
  kv.set("b", "3");  // overwrite keeps position
  EXPECT_EQ(kv.serialize(), "b = 3\na = 1\n");
  const auto reparsed = KvFile::parse(kv.serialize());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->serialize(), kv.serialize());
}

TEST(KvFile, SetCanonicalizesValuesForRoundTrip) {
  KvFile kv;
  kv.set("a", "  padded  ");
  EXPECT_EQ(*kv.find("a"), "padded");  // what a re-parse would yield
  const auto reparsed = KvFile::parse(kv.serialize());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed->find("a"), *kv.find("a"));
}

TEST(KvFileDeathTest, SetRejectsMultiLineValues) {
  KvFile kv;
  EXPECT_DEATH(kv.set("a", "one\ntwo"), "single-line");
}

TEST(KvFile, LastLineWithoutNewlineParses) {
  const auto kv = KvFile::parse("a = 1");
  ASSERT_TRUE(kv.has_value());
  EXPECT_EQ(*kv->find("a"), "1");
}

TEST(KvReader, TypedGettersAndFallbacks) {
  const auto kv = KvFile::parse(
      "u = 18446744073709551615\nd = 2.5\nb1 = yes\nb0 = 0\ns = text\n");
  ASSERT_TRUE(kv.has_value());
  KvReader r(*kv);
  EXPECT_EQ(r.get_u64("u", 0), 18446744073709551615ULL);
  EXPECT_DOUBLE_EQ(r.get_double("d", 0.0), 2.5);
  EXPECT_TRUE(r.get_bool("b1", false));
  EXPECT_FALSE(r.get_bool("b0", true));
  EXPECT_EQ(r.get_string("s", ""), "text");
  EXPECT_EQ(r.get_u32("absent", 7u), 7u);  // fallback, not an error
  EXPECT_FALSE(r.finish().has_value());
}

TEST(KvReader, MalformedUnsignedIsAnError) {
  for (const char* bad : {"trials = eight\n", "trials = -3\n",
                          "trials = 8x\n", "trials = 99999999999999999999\n",
                          "trials =\n"}) {
    const auto kv = KvFile::parse(bad);
    ASSERT_TRUE(kv.has_value()) << bad;
    KvReader r(*kv);
    EXPECT_EQ(r.get_u64("trials", 5), 5u) << bad;  // fallback on error
    const auto err = r.finish();
    ASSERT_TRUE(err.has_value()) << bad;
    EXPECT_NE(err->find("key 'trials'"), std::string::npos) << bad;
  }
}

TEST(KvReader, U32RejectsOverflow) {
  const auto kv = KvFile::parse("trials = 4294967296\n");
  ASSERT_TRUE(kv.has_value());
  KvReader r(*kv);
  EXPECT_EQ(r.get_u32("trials", 1), 1u);
  EXPECT_TRUE(r.finish().has_value());
}

TEST(KvReader, MalformedBoolAndDoubleAreErrors) {
  const auto kv = KvFile::parse("flag = maybe\nratio = 1.2.3\n");
  ASSERT_TRUE(kv.has_value());
  KvReader r(*kv);
  EXPECT_TRUE(r.get_bool("flag", true));  // fallback
  EXPECT_DOUBLE_EQ(r.get_double("ratio", 9.0), 9.0);
  const auto err = r.finish();
  ASSERT_TRUE(err.has_value());
  // First error wins: the bool came first.
  EXPECT_NE(err->find("key 'flag'"), std::string::npos);
}

TEST(KvReader, UnconsumedKeyIsUnknown) {
  const auto kv = KvFile::parse("trials = 8\ntypo_key = 1\n");
  ASSERT_TRUE(kv.has_value());
  KvReader r(*kv);
  EXPECT_EQ(r.get_u32("trials", 0), 8u);
  const auto err = r.finish();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, "unknown key 'typo_key'");
}

}  // namespace
}  // namespace explframe
