// Service crash-consistency torture suite — the submit→claim→execute→
// report→retire pipeline is run once per *injected failure point*:
//
//   - a counting pass over io::FaultyFs records every filesystem
//     operation the pipeline performs, then the pipeline re-runs once per
//     operation index with a simulated process crash injected there
//     (un-synced bytes dropped, everything after failing);
//   - every name in io::crash_point_names() is armed in turn, on the
//     pipeline that reaches it (happy scenario, always-crashing worker,
//     sweep job), and the suite fails if a registered name is never
//     visited — the list cannot silently go stale;
//   - every operation index absorbs one injected *transient* error with
//     no recovery pass at all (the bounded deterministic retry);
//   - ENOSPC is injected into the report/done-cache writes specifically.
//
// The invariant asserted after every recovery: each job resolves to a
// served report (byte-identical to an undisturbed run) or a
// resubmittable/failed entry — never a lost job, and never a duplicated
// execution of a committed one. Each injection run appends a line to
// torture_trace.service.log (the CI failure artifact).
#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "io/faulty_fs.hpp"
#include "io/fs.hpp"
#include "scenario/registry.hpp"
#include "service/service.hpp"
#include "support/check.hpp"
#include "sweep/registry.hpp"
#include "sweep/spec.hpp"

namespace explframe::service {
namespace {

const scenario::Registry& scenarios() {
  return scenario::Registry::builtin();
}

/// Small but real grid: 2x2 points x 2 trials of the quickstart attack,
/// in a private registry so the torture runs never pay for the builtin
/// catalogue.
const sweep::Registry& sweeps() {
  static const sweep::Registry registry = [] {
    const auto spec = sweep::SweepSpec::from_sweep(
        "name = tiny-grid\n"
        "title = Tiny torture grid\n"
        "base = quickstart\n"
        "base.trials = 2\n"
        "axis.defence = none,trr\n"
        "axis.max_rows = 24,48\n");
    EXPLFRAME_CHECK(spec.has_value());
    sweep::Registry r;
    r.add(*spec);
    return r;
  }();
  return registry;
}

/// A fresh spool directory per injection run.
std::string fresh_spool(const std::string& name) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

/// One line per injection run; lands in the ctest cwd (build/) so CI can
/// upload it when the suite fails.
void log_line(const std::string& line) {
  static std::ofstream log("torture_trace.service.log", std::ios::trunc);
  log << line << "\n";
  log.flush();
}

JobRequest scenario_request() {
  JobRequest request;
  request.kind = JobKind::kScenario;
  request.name = "quickstart";
  return request;
}

JobRequest sweep_request() {
  JobRequest request;
  request.kind = JobKind::kSweep;
  request.name = "tiny-grid";
  return request;
}

/// One full pipeline pass: start, submit, drain, drain-shutdown. Start
/// and submit failures are tolerated (under a crash plan they are the
/// expected outcome, and recovery is the thing under test).
void run_pipeline(io::FileSystem* fs, const std::string& spool,
                  const JobRequest& request,
                  std::function<bool(const Job&)> crash_for_test = nullptr,
                  std::uint32_t max_attempts = 2) {
  ServiceOptions options;
  options.spool_dir = spool;
  options.workers = 1;  // One worker => a deterministic operation trace.
  options.max_attempts = max_attempts;
  options.crash_for_test = std::move(crash_for_test);
  options.fs = fs;
  Service service(std::move(options), scenarios(), sweeps());
  if (service.start(nullptr)) {
    (void)service.submit(request);
    service.drain();
  }
  service.shutdown(Service::Shutdown::kDrain);
}

/// The undisturbed pipeline's outputs — what every recovery must
/// reproduce byte-identically.
struct Reference {
  std::string id;
  std::string md;
  std::string csv;
};

Reference make_reference(const JobRequest& request,
                         const std::string& spool_name) {
  const std::string spool = fresh_spool(spool_name);
  run_pipeline(nullptr, spool, request);
  Reference ref;
  std::string error;
  const auto id = job_id(request, scenarios(), sweeps(), &error);
  EXPLFRAME_CHECK(id.has_value());
  ref.id = *id;
  EXPLFRAME_CHECK(
      io::real().read_file(spool + "/done/" + ref.id + ".md", &ref.md).ok());
  EXPLFRAME_CHECK(
      io::real()
          .read_file(spool + "/done/" + ref.id + ".csv", &ref.csv)
          .ok());
  return ref;
}

/// THE recovery invariant: restart on the real filesystem, resubmit, and
/// the job must resolve to the reference report — executing again only if
/// the crashed run never committed (done/<id>.md is the commit record).
void recover_and_verify(const std::string& spool, const JobRequest& request,
                        const Reference& ref, const std::string& label) {
  const bool committed =
      io::real().exists(spool + "/done/" + ref.id + ".md");
  ServiceOptions options;
  options.spool_dir = spool;
  options.workers = 1;
  Service service(std::move(options), scenarios(), sweeps());
  std::string error;
  ASSERT_TRUE(service.start(&error)) << label << ": " << error;
  std::string submit_error;
  const auto outcome = service.submit(request, &submit_error);
  ASSERT_TRUE(outcome.has_value()) << label << ": " << submit_error;
  EXPECT_EQ(outcome->id, ref.id) << label;
  service.drain();
  service.shutdown(Service::Shutdown::kDrain);

  const auto md = service.report(ref.id, "md");
  const auto csv = service.report(ref.id, "csv");
  ASSERT_TRUE(md.has_value()) << label << ": job lost (no md report)";
  ASSERT_TRUE(csv.has_value()) << label << ": job lost (no csv report)";
  EXPECT_EQ(*md, ref.md) << label << ": recovered md drifted";
  EXPECT_EQ(*csv, ref.csv) << label << ": recovered csv drifted";
  if (committed) {
    EXPECT_EQ(service.executions(), 0u)
        << label << ": duplicated execution of a committed job";
  } else {
    EXPECT_EQ(service.executions(), 1u) << label;
  }
  EXPECT_FALSE(io::real().exists(spool + "/queue/" + ref.id + ".req"))
      << label << ": stale .req after completion";
}

/// The per-kind ordinal of trace[k] — what fail_nth scripts against.
std::uint64_t ordinal_of(const std::vector<io::FaultyFs::OpRecord>& trace,
                         std::size_t k) {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < k; ++i)
    if (trace[i].op == trace[k].op) ++n;
  return n;
}

TEST(ServiceTorture, CrashAtEveryOperationRecoversWithoutLossOrDuplication) {
  const Reference ref = make_reference(scenario_request(), "torture-ref");

  // Counting pass: no faults, record the pipeline's operation trace.
  io::FaultyFs counter(io::real());
  const std::string count_spool = fresh_spool("torture-count");
  run_pipeline(&counter, count_spool, scenario_request());
  const std::vector<io::FaultyFs::OpRecord> trace = counter.trace();
  ASSERT_GE(trace.size(), 15u);  // mkdirs, lists, spool, two reports.
  log_line("counting pass: " + std::to_string(trace.size()) +
           " operations in the scenario pipeline");

  for (std::size_t k = 0; k < trace.size(); ++k) {
    const std::string label = "crash at " + trace[k].describe(k);
    log_line(label);
    const std::string spool =
        fresh_spool("torture-crash-" + std::to_string(k));
    io::FaultyFs faulty(io::real());
    faulty.crash_at_op(k);
    run_pipeline(&faulty, spool, scenario_request());
    EXPECT_TRUE(faulty.crashed()) << label;
    recover_and_verify(spool, scenario_request(), ref, label);
    if (::testing::Test::HasFailure()) {
      log_line("FAILED: " + label);
      return;
    }
  }
  log_line("crash-at-every-op: all " + std::to_string(trace.size()) +
           " points recovered");
}

TEST(ServiceTorture, EveryRegisteredCrashPointIsVisitedAndRecovers) {
  const Reference scenario_ref =
      make_reference(scenario_request(), "torture-cp-sref");
  const Reference sweep_ref =
      make_reference(sweep_request(), "torture-cp-swref");

  // Which pipeline reaches which point: the happy scenario path covers
  // submit/finish, a worker that always crashes covers fail.recorded,
  // and a sweep job covers the checkpoint append.
  const auto crash_always = [](const Job&) { return true; };
  std::vector<std::string> visited_union;
  for (const std::string& name : io::crash_point_names()) {
    const std::string label = "crash point " + name;
    log_line(label);
    const std::string spool = fresh_spool("torture-point-" + name);
    io::FaultyFs faulty(io::real());
    faulty.crash_at_point(name);
    const bool fail_path = name == "service.fail.recorded";
    const bool sweep_path = name == "sweep.checkpoint.appended";
    const JobRequest request =
        sweep_path ? sweep_request() : scenario_request();
    run_pipeline(&faulty, spool, request,
                 fail_path ? std::function<bool(const Job&)>(crash_always)
                           : nullptr,
                 fail_path ? 1 : 2);
    for (const std::string& seen : faulty.visited_points())
      if (std::find(visited_union.begin(), visited_union.end(), seen) ==
          visited_union.end())
        visited_union.push_back(seen);
    EXPECT_TRUE(faulty.crashed())
        << label << ": the pipeline never reached this point — the "
        << "crash_point_names() registry is stale";
    recover_and_verify(spool, request,
                       sweep_path ? sweep_ref : scenario_ref, label);
    if (::testing::Test::HasFailure()) {
      log_line("FAILED: " + label);
      return;
    }
  }

  // Every registered name was visited by some pipeline above.
  for (const std::string& name : io::crash_point_names())
    EXPECT_NE(std::find(visited_union.begin(), visited_union.end(), name),
              visited_union.end())
        << "registered crash point never visited: " << name;
  log_line("crash points: all " +
           std::to_string(io::crash_point_names().size()) +
           " registered points visited and recovered");
}

TEST(ServiceTorture, OneTransientFaultAtAnyOperationIsAbsorbedByRetries) {
  const Reference ref = make_reference(scenario_request(), "torture-tr-ref");

  io::FaultyFs counter(io::real());
  const std::string count_spool = fresh_spool("torture-tr-count");
  run_pipeline(&counter, count_spool, scenario_request());
  const std::vector<io::FaultyFs::OpRecord> trace = counter.trace();

  for (std::size_t k = 0; k < trace.size(); ++k) {
    const std::string label = "transient at " + trace[k].describe(k);
    log_line(label);
    const std::string spool = fresh_spool("torture-tr-" + std::to_string(k));
    io::FaultyFs faulty(io::real());
    faulty.fail_nth(trace[k].op, ordinal_of(trace, k),
                    io::Status::transient_error("injected flake"));

    // No recovery pass: the bounded deterministic retry must absorb the
    // flake and the pipeline must complete as if nothing happened.
    ServiceOptions options;
    options.spool_dir = spool;
    options.workers = 1;
    options.fs = &faulty;
    Service service(std::move(options), scenarios(), sweeps());
    std::string error;
    ASSERT_TRUE(service.start(&error)) << label << ": " << error;
    std::string submit_error;
    const auto outcome = service.submit(scenario_request(), &submit_error);
    ASSERT_TRUE(outcome.has_value()) << label << ": " << submit_error;
    service.drain();
    service.shutdown(Service::Shutdown::kDrain);
    EXPECT_FALSE(service.degraded()) << label;
    const auto md = service.report(ref.id, "md");
    const auto csv = service.report(ref.id, "csv");
    ASSERT_TRUE(md.has_value() && csv.has_value()) << label;
    EXPECT_EQ(*md, ref.md) << label;
    EXPECT_EQ(*csv, ref.csv) << label;
    if (::testing::Test::HasFailure()) {
      log_line("FAILED: " + label);
      return;
    }
  }
  log_line("transient-absorb: all " + std::to_string(trace.size()) +
           " operations retried clean");
}

TEST(ServiceTorture, PermanentSpoolFailureDegradesToReadOnly) {
  const Reference ref = make_reference(scenario_request(), "torture-dg-ref");
  const std::string spool = fresh_spool("torture-degraded");
  io::FaultyFs faulty(io::real());

  ServiceOptions options;
  options.spool_dir = spool;
  options.workers = 1;
  options.fs = &faulty;
  Service service(std::move(options), scenarios(), sweeps());
  std::string error;
  ASSERT_TRUE(service.start(&error)) << error;

  // A first job completes while the disk is healthy.
  const auto first = service.submit(scenario_request(), &error);
  ASSERT_TRUE(first.has_value()) << error;
  service.drain();
  ASSERT_TRUE(service.report(ref.id, "md").has_value());
  ASSERT_FALSE(service.degraded());

  // The disk fills: the next (different) submission cannot be spooled,
  // and the failure is permanent — the service flips to read-only.
  faulty.set_capacity(0);
  std::string submit_error;
  SubmitError why = SubmitError::kNone;
  EXPECT_FALSE(
      service.submit(sweep_request(), &submit_error, &why).has_value());
  EXPECT_EQ(why, SubmitError::kUnavailable);
  EXPECT_TRUE(service.degraded());
  EXPECT_FALSE(service.degraded_reason().empty());

  // Read-only means exactly that: the cached report still serves, a
  // resubmission of the completed job is answered from the cache, and
  // new work keeps being rejected with the structured error.
  const auto cached = service.submit(scenario_request(), &submit_error, &why);
  ASSERT_TRUE(cached.has_value()) << submit_error;
  EXPECT_TRUE(cached->cached);
  const auto md = service.report(ref.id, "md");
  ASSERT_TRUE(md.has_value());
  EXPECT_EQ(*md, ref.md);
  EXPECT_FALSE(
      service.submit(sweep_request(), &submit_error, &why).has_value());
  EXPECT_EQ(why, SubmitError::kUnavailable);
  EXPECT_NE(submit_error.find("degraded"), std::string::npos)
      << submit_error;
  service.shutdown(Service::Shutdown::kDrain);

  // A bad request is still a bad request, not "unavailable" — the exit
  // codes explsimd derives from this distinction must stay truthful.
  EXPECT_FALSE(
      service.submit_line("explsimd-request v1 kind=scenario name=nope",
                          &submit_error, &why)
          .has_value());
  EXPECT_EQ(why, SubmitError::kBadRequest);
}

TEST(ServiceTorture, EnospcDuringReportEmissionFailsTheJobResubmittably) {
  const Reference ref = make_reference(scenario_request(), "torture-en-ref");

  io::FaultyFs counter(io::real());
  const std::string count_spool = fresh_spool("torture-en-count");
  run_pipeline(&counter, count_spool, scenario_request());
  const std::vector<io::FaultyFs::OpRecord> trace = counter.trace();

  // The write ops that build the done-cache entries, by per-kind ordinal.
  std::optional<std::uint64_t> csv_write;
  std::optional<std::uint64_t> md_write;
  for (std::size_t k = 0; k < trace.size(); ++k) {
    if (trace[k].op != io::Op::kWrite) continue;
    if (trace[k].path.find("/done/") == std::string::npos) continue;
    if (!csv_write && trace[k].path.find(".csv") != std::string::npos)
      csv_write = ordinal_of(trace, k);
    if (!md_write && trace[k].path.find(".md") != std::string::npos)
      md_write = ordinal_of(trace, k);
  }
  ASSERT_TRUE(csv_write.has_value());
  ASSERT_TRUE(md_write.has_value());

  for (const bool fail_md : {false, true}) {
    const std::string label =
        fail_md ? "ENOSPC on the md commit record" : "ENOSPC on the csv";
    log_line(label);
    const std::string spool = fresh_spool(fail_md ? "torture-en-md"
                                                  : "torture-en-csv");
    io::FaultyFs faulty(io::real());
    faulty.fail_nth(io::Op::kWrite, fail_md ? *md_write : *csv_write,
                    io::Status::from_errno(ENOSPC, "injected disk full"));

    ServiceOptions options;
    options.spool_dir = spool;
    options.workers = 1;
    options.fs = &faulty;
    Service service(std::move(options), scenarios(), sweeps());
    std::string error;
    ASSERT_TRUE(service.start(&error)) << label << ": " << error;
    const auto outcome = service.submit(scenario_request(), &error);
    ASSERT_TRUE(outcome.has_value()) << label << ": " << error;
    service.drain();
    service.shutdown(Service::Shutdown::kDrain);

    // The job failed, with the reason filed; ENOSPC is permanent, so the
    // service is degraded.
    const auto job = service.status(ref.id);
    ASSERT_TRUE(job.has_value()) << label;
    EXPECT_EQ(job->state, JobState::kFailed) << label;
    EXPECT_TRUE(service.degraded()) << label;
    std::string reason;
    ASSERT_TRUE(io::real()
                    .read_file(spool + "/failed/" + ref.id + ".err", &reason)
                    .ok())
        << label;
    EXPECT_NE(reason.find("ENOSPC"), std::string::npos) << label;

    // A partially emitted report is NEVER served: without the md commit
    // record neither extension resolves, even if the csv bytes landed.
    EXPECT_FALSE(service.report(ref.id, "md").has_value()) << label;
    EXPECT_FALSE(service.report(ref.id, "csv").has_value()) << label;
    EXPECT_FALSE(io::real().exists(spool + "/done/" + ref.id + ".md"))
        << label;
    if (!fail_md) {
      EXPECT_FALSE(io::real().exists(spool + "/done/" + ref.id + ".csv"))
          << label;
    }

    // Failed is resubmittable: on a healed disk the same request runs
    // again and produces the reference bytes.
    recover_and_verify(spool, scenario_request(), ref, label);
    if (::testing::Test::HasFailure()) {
      log_line("FAILED: " + label);
      return;
    }
  }
  log_line("ENOSPC report emission: both orderings fail resubmittably");
}

}  // namespace
}  // namespace explframe::service
