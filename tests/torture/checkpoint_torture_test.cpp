// Sweep-checkpoint crash-consistency torture — the append→resume pipeline
// under every injected failure:
//
//   - a counting pass over io::FaultyFs records every checkpoint
//     operation a small sweep performs; the sweep then re-runs once per
//     operation index with a simulated process crash there (un-synced
//     bytes dropped, a crash at a sync leaving a TORN half-line), and a
//     `--resume` on the healthy filesystem must emit byte-identical CSV
//     and markdown every single time;
//   - the satellite regression for the once-unchecked std::fwrite: a
//     failed record append now aborts the sweep with a "cannot write
//     checkpoint" error while keeping every durable record for resume,
//     and a *transient* append flake is absorbed by the bounded retry
//     with no error at all;
//   - ENOSPC mid-run (a byte budget on the filesystem) aborts resumably,
//     and lifting the budget lets resume finish the run.
//
// Each injection run appends a line to torture_trace.checkpoint.log (the
// CI failure artifact).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "io/faulty_fs.hpp"
#include "io/fs.hpp"
#include "scenario/registry.hpp"
#include "support/check.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"

namespace explframe::sweep {
namespace {

/// Small but real: 2x2 points x 2 trials of the quickstart attack.
const SweepSpec& tiny_spec() {
  static const SweepSpec spec = [] {
    const auto parsed = SweepSpec::from_sweep(
        "name = tiny-grid\n"
        "title = Tiny torture grid\n"
        "base = quickstart\n"
        "base.trials = 2\n"
        "axis.defence = none,trr\n"
        "axis.max_rows = 24,48\n");
    EXPLFRAME_CHECK(parsed.has_value());
    return *parsed;
  }();
  return spec;
}

const scenario::Registry& scenarios() {
  return scenario::Registry::builtin();
}

/// A fresh scratch directory per injection run.
std::string fresh_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// One line per injection run; lands in the ctest cwd (build/) so CI can
/// upload it when the suite fails.
void log_line(const std::string& line) {
  static std::ofstream log("torture_trace.checkpoint.log", std::ios::trunc);
  log << line << "\n";
  log.flush();
}

/// The undisturbed sweep's emitted bytes — what every resume must
/// reproduce.
struct Reference {
  std::string csv;
  std::string md;
};

const Reference& reference() {
  static const Reference ref = [] {
    SweepRunOptions options;
    options.threads = 1;
    std::string error;
    const auto result = run_sweep(tiny_spec(), scenarios(), options, &error);
    EXPLFRAME_CHECK_MSG(result.has_value(), error.c_str());
    Reference r;
    r.csv = sweep_csv(*result);
    r.md = sweep_markdown(*result);
    return r;
  }();
  return ref;
}

SweepRunOptions checkpointed_options(const std::string& path,
                                     io::FileSystem* fs) {
  SweepRunOptions options;
  options.threads = 1;  // One worker => a deterministic operation trace.
  options.checkpoint_path = path;
  options.resume = true;
  options.fs = fs;
  return options;
}

/// Resume on the real filesystem and assert the emitted bytes match the
/// reference — the "--resume finishes the run byte-identically" contract.
/// Returns the resumed result for extra assertions.
SweepResult resume_and_verify(const std::string& path,
                              const std::string& label) {
  std::string error;
  const auto resumed = run_sweep(tiny_spec(), scenarios(),
                                 checkpointed_options(path, nullptr), &error);
  EXPECT_TRUE(resumed.has_value()) << label << ": " << error;
  if (!resumed) return SweepResult{};
  EXPECT_EQ(sweep_csv(*resumed), reference().csv)
      << label << ": resumed csv drifted";
  EXPECT_EQ(sweep_markdown(*resumed), reference().md)
      << label << ": resumed markdown drifted";
  EXPECT_FALSE(io::real().exists(path))
      << label << ": finished sweep left its checkpoint behind";
  return *resumed;
}

TEST(CheckpointTorture, CrashAtEveryOperationThenResumeIsByteIdentical) {
  // Counting pass: no faults, record the checkpoint operation trace.
  io::FaultyFs counter(io::real());
  const std::string count_dir = fresh_dir("ckpt-torture-count");
  std::string error;
  const auto counted =
      run_sweep(tiny_spec(), scenarios(),
                checkpointed_options(count_dir + "/grid.ckpt", &counter),
                &error);
  ASSERT_TRUE(counted.has_value()) << error;
  ASSERT_EQ(sweep_csv(*counted), reference().csv);
  const std::vector<io::FaultyFs::OpRecord> trace = counter.trace();
  // open + header write/sync + one write/sync per point + close + remove.
  ASSERT_GE(trace.size(), 3u + 2u * counted->points.size());
  log_line("counting pass: " + std::to_string(trace.size()) +
           " checkpoint operations");

  std::size_t total_resumed = 0;
  for (std::size_t k = 0; k < trace.size(); ++k) {
    const std::string label = "crash at " + trace[k].describe(k);
    log_line(label);
    const std::string dir = fresh_dir("ckpt-torture-" + std::to_string(k));
    const std::string path = dir + "/grid.ckpt";
    io::FaultyFs faulty(io::real());
    faulty.crash_at_op(k);
    std::string crash_error;
    const auto crashed = run_sweep(tiny_spec(), scenarios(),
                                   checkpointed_options(path, &faulty),
                                   &crash_error);
    EXPECT_TRUE(faulty.crashed()) << label;
    if (crashed.has_value()) {
      // A crash after the last record (at the close or the final remove)
      // still yields a complete, correct result.
      EXPECT_EQ(sweep_csv(*crashed), reference().csv) << label;
    } else {
      // The abort names its cause (which op it hit varies): either the
      // checkpoint path or the injected crash itself.
      EXPECT_FALSE(crash_error.empty()) << label;
    }
    total_resumed += resume_and_verify(path, label).resumed_points;
    if (::testing::Test::HasFailure()) {
      log_line("FAILED: " + label);
      return;
    }
  }
  // Some crashes land after fsynced records, so resume must actually have
  // served points from checkpoints — not quietly recomputed everything.
  EXPECT_GT(total_resumed, 0u);
  log_line("crash-at-every-op: all " + std::to_string(trace.size()) +
           " points recovered; " + std::to_string(total_resumed) +
           " points served from checkpoints");
}

TEST(CheckpointTorture, FailedAppendAbortsResumablyAndTransientIsAbsorbed) {
  // Sync #0 durably lands the header, sync #1 the first record — the op
  // the once-unchecked fwrite hid failures of.
  {
    const std::string dir = fresh_dir("ckpt-torture-append");
    const std::string path = dir + "/grid.ckpt";
    io::FaultyFs faulty(io::real());
    faulty.fail_from(io::Op::kSync, 1,
                     io::Status::from_errno(ENOSPC, "injected disk full"));
    std::string error;
    const auto aborted = run_sweep(tiny_spec(), scenarios(),
                                   checkpointed_options(path, &faulty),
                                   &error);
    EXPECT_FALSE(aborted.has_value());
    EXPECT_NE(error.find("cannot write checkpoint"), std::string::npos)
        << error;
    // The checkpoint survives the abort — it is the resume artifact.
    EXPECT_TRUE(io::real().exists(path));
    log_line("append failure surfaced: " + error);
    resume_and_verify(path, "recovery after failed append");
  }

  // One transient flake on the same sync: the bounded retry reopens,
  // truncates any torn tail and rewrites — no error, reference bytes.
  {
    const std::string dir = fresh_dir("ckpt-torture-flake");
    const std::string path = dir + "/grid.ckpt";
    io::FaultyFs faulty(io::real());
    faulty.fail_nth(io::Op::kSync, 1,
                    io::Status::transient_error("injected flaky fsync"));
    std::string error;
    const auto result = run_sweep(tiny_spec(), scenarios(),
                                  checkpointed_options(path, &faulty),
                                  &error);
    ASSERT_TRUE(result.has_value()) << error;
    EXPECT_EQ(sweep_csv(*result), reference().csv);
    EXPECT_EQ(sweep_markdown(*result), reference().md);
    EXPECT_FALSE(io::real().exists(path));
    log_line("transient append flake absorbed");
  }
}

TEST(CheckpointTorture, EnospcMidSweepResumesOnceTheDiskRecovers) {
  const std::string dir = fresh_dir("ckpt-torture-enospc");
  const std::string path = dir + "/grid.ckpt";
  io::FaultyFs faulty(io::real());
  // Enough budget for the header (and perhaps a record), then the disk
  // is full: the sweep must abort with a checkpoint error, not lose work
  // silently.
  faulty.set_capacity(80);
  std::string error;
  const auto aborted = run_sweep(tiny_spec(), scenarios(),
                                 checkpointed_options(path, &faulty),
                                 &error);
  EXPECT_FALSE(aborted.has_value());
  EXPECT_NE(error.find("checkpoint"), std::string::npos) << error;
  log_line("ENOSPC abort: " + error);

  // The operator frees disk space; resume (through the SAME healed
  // filesystem) finishes the sweep byte-identically.
  faulty.set_capacity(std::nullopt);
  const auto resumed = run_sweep(tiny_spec(), scenarios(),
                                 checkpointed_options(path, &faulty),
                                 &error);
  ASSERT_TRUE(resumed.has_value()) << error;
  EXPECT_EQ(sweep_csv(*resumed), reference().csv);
  EXPECT_EQ(sweep_markdown(*resumed), reference().md);
  log_line("ENOSPC recovery: resumed to reference bytes");
}

TEST(CheckpointTorture, CrashAtTheAppendPointKeepsTheRecordDurable) {
  const std::string dir = fresh_dir("ckpt-torture-point");
  const std::string path = dir + "/grid.ckpt";
  io::FaultyFs faulty(io::real());
  faulty.crash_at_point("sweep.checkpoint.appended");
  std::string error;
  const auto crashed = run_sweep(tiny_spec(), scenarios(),
                                 checkpointed_options(path, &faulty),
                                 &error);
  EXPECT_FALSE(crashed.has_value());
  EXPECT_TRUE(faulty.crashed());
  const std::vector<std::string> visited = faulty.visited_points();
  EXPECT_NE(std::find(visited.begin(), visited.end(),
                      std::string("sweep.checkpoint.appended")),
            visited.end());

  // The point sits right after a record's fsync, so at least that record
  // is durable and the resume serves it instead of recomputing.
  const SweepResult resumed =
      resume_and_verify(path, "crash at sweep.checkpoint.appended");
  EXPECT_GE(resumed.resumed_points, 1u);
  log_line("crash point sweep.checkpoint.appended: record survived, " +
           std::to_string(resumed.resumed_points) + " points resumed");
}

}  // namespace
}  // namespace explframe::sweep
