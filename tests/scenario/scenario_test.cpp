// scenario::Scenario / Registry — the declarative experiment layer.
#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include "support/units.hpp"

namespace explframe::scenario {
namespace {

TEST(Registry, HasTheHandbookScenarios) {
  const Registry& reg = Registry::builtin();
  EXPECT_GE(reg.all().size(), 10u);
  EXPECT_NE(reg.find("quickstart"), nullptr);
  EXPECT_NE(reg.find("aes-single-flip"), nullptr);
  EXPECT_NE(reg.find("present-single-flip"), nullptr);
  EXPECT_NE(reg.find("defence-trr-ecc"), nullptr);
  EXPECT_EQ(reg.find("no-such-scenario"), nullptr);
}

TEST(Registry, NamesAreUniqueValidKeysAndTitlesPresent) {
  for (const Scenario& s : Registry::builtin().all()) {
    EXPECT_TRUE(KvFile::valid_key(s.name)) << s.name;
    EXPECT_FALSE(s.title.empty()) << s.name;
    EXPECT_FALSE(s.description.empty()) << s.name;
    EXPECT_EQ(Registry::builtin().find(s.name), &s) << s.name;
    EXPECT_GE(s.trials, 1u) << s.name;
  }
}

// The acceptance-criteria invariant: every registered scenario survives
// write -> parse unchanged, so `.scn` files are a faithful exchange format.
TEST(Scenario, EveryRegisteredScenarioRoundTrips) {
  for (const Scenario& s : Registry::builtin().all()) {
    std::string error;
    const auto reparsed = Scenario::from_scn(s.to_scn(), &error);
    ASSERT_TRUE(reparsed.has_value()) << s.name << ": " << error;
    EXPECT_EQ(*reparsed, s) << s.name;
    // And the canonical text itself is a fixed point.
    EXPECT_EQ(reparsed->to_scn(), s.to_scn()) << s.name;
  }
}

TEST(Scenario, MinimalScnUsesDefaults) {
  const auto s =
      Scenario::from_scn("name = mini\ntitle = Minimal scenario\n");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->cipher, crypto::CipherKind::kAes128);
  EXPECT_EQ(s->defence, Defence::kNone);
  EXPECT_EQ(s->weak_cells, WeakCellProfile::kVulnerable);
  EXPECT_EQ(s->trials, 8u);
  EXPECT_EQ(s->ciphertext_budget, 8000u);
}

TEST(Scenario, RejectsUnknownKey) {
  std::string error;
  EXPECT_FALSE(Scenario::from_scn(
                   "name = x\ntitle = t\nciphertext_bugdet = 9\n", &error)
                   .has_value());
  EXPECT_EQ(error, "unknown key 'ciphertext_bugdet'");
}

TEST(Scenario, RejectsMalformedValues) {
  std::string error;
  EXPECT_FALSE(
      Scenario::from_scn("name = x\ntitle = t\ntrials = many\n", &error)
          .has_value());
  EXPECT_NE(error.find("key 'trials'"), std::string::npos);

  EXPECT_FALSE(
      Scenario::from_scn("name = x\ntitle = t\ncipher = des\n", &error)
          .has_value());
  EXPECT_NE(error.find("unknown cipher 'des'"), std::string::npos);

  EXPECT_FALSE(
      Scenario::from_scn("name = x\ntitle = t\ndefence = rowclone\n", &error)
          .has_value());
  EXPECT_NE(error.find("unknown defence"), std::string::npos);
}

TEST(Scenario, RejectsDuplicateKeys) {
  std::string error;
  EXPECT_FALSE(
      Scenario::from_scn("name = x\ntitle = t\nseed = 1\nseed = 2\n", &error)
          .has_value());
  EXPECT_NE(error.find("duplicate key 'seed'"), std::string::npos);
}

TEST(Scenario, RejectsSemanticImpossibilities) {
  std::string error;
  // DFA needs transient pairs; the persistent-fault campaign cannot drive it.
  EXPECT_FALSE(
      Scenario::from_scn("name = x\ntitle = t\nanalysis = dfa\n", &error)
          .has_value());
  EXPECT_NE(error.find("dfa"), std::string::npos);

  EXPECT_FALSE(Scenario::from_scn("name = x\ntitle = t\ncipher = present80\n"
                                  "analysis = pfa-max-likelihood\n",
                                  &error)
                   .has_value());
  EXPECT_NE(error.find("AES-only"), std::string::npos);

  EXPECT_FALSE(Scenario::from_scn("name = x\ntitle = t\ntrials = 0\n", &error)
                   .has_value());
  EXPECT_FALSE(Scenario::from_scn(
                   "name = x\ntitle = t\nmemory_mib = 4\nbuffer_mib = 4\n",
                   &error)
                   .has_value());
  EXPECT_FALSE(Scenario::from_scn("name = not a key\ntitle = t\n", &error)
                   .has_value());
}

TEST(Scenario, RunnerConfigLowersEveryKnob) {
  const auto s = Scenario::from_scn(
      "name = lower\n"
      "title = t\n"
      "cipher = present80\n"
      "defence = trr+ecc\n"
      "trr_threshold = 7000\n"
      "weak_cells = dense\n"
      "memory_mib = 128\n"
      "trials = 3\n"
      "threads = 4\n"
      "seed = 77\n"
      "buffer_mib = 8\n"
      "hammer_iterations = 50000\n"
      "max_rows = 96\n"
      "both_polarities = false\n"
      "ciphertext_budget = 1234\n"
      "noise_ops = 5\n"
      "attacker_sleeps = true\n");
  ASSERT_TRUE(s.has_value());
  const attack::RunnerConfig cfg = s->runner_config();
  EXPECT_EQ(cfg.trials, 3u);
  EXPECT_EQ(cfg.threads, 4u);
  EXPECT_EQ(cfg.seed, 77u);
  EXPECT_EQ(cfg.system.memory_bytes, 128 * kMiB);
  EXPECT_TRUE(cfg.system.dram.trr.enabled);
  EXPECT_EQ(cfg.system.dram.trr.threshold, 7000u);
  EXPECT_TRUE(cfg.system.dram.ecc.enabled);
  EXPECT_DOUBLE_EQ(cfg.system.dram.weak_cells.cells_per_mib, 512.0);
  EXPECT_EQ(cfg.campaign.cipher, crypto::CipherKind::kPresent80);
  EXPECT_EQ(cfg.campaign.templating.buffer_bytes, 8 * kMiB);
  EXPECT_EQ(cfg.campaign.templating.hammer_iterations, 50'000u);
  EXPECT_EQ(cfg.campaign.templating.max_rows, 96u);
  EXPECT_FALSE(cfg.campaign.templating.both_polarities);
  EXPECT_EQ(cfg.campaign.ciphertext_budget, 1234u);
  EXPECT_EQ(cfg.campaign.noise_ops, 5u);
  EXPECT_TRUE(cfg.campaign.attacker_sleeps);
}

TEST(Scenario, DefenceProfilesLowerToDeviceFlags) {
  const auto lower = [](const char* defence) {
    Scenario s = builtin_scenario("quickstart");
    s.defence = *defence_from_string(defence);
    const attack::RunnerConfig cfg = s.runner_config();
    return std::make_pair(cfg.system.dram.trr.enabled,
                          cfg.system.dram.ecc.enabled);
  };
  EXPECT_EQ(lower("none"), std::make_pair(false, false));
  EXPECT_EQ(lower("trr"), std::make_pair(true, false));
  EXPECT_EQ(lower("ecc"), std::make_pair(false, true));
  EXPECT_EQ(lower("trr+ecc"), std::make_pair(true, true));
}

TEST(Scenario, EnumNamesRoundTrip) {
  for (const auto d :
       {Defence::kNone, Defence::kTrr, Defence::kEcc, Defence::kTrrEcc})
    EXPECT_EQ(defence_from_string(to_string(d)), d);
  for (const auto p :
       {WeakCellProfile::kQuiet, WeakCellProfile::kRealistic,
        WeakCellProfile::kVulnerable, WeakCellProfile::kDense})
    EXPECT_EQ(weak_cell_profile_from_string(to_string(p)), p);
}

}  // namespace
}  // namespace explframe::scenario
