#include "mm/buddy.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "support/rng.hpp"

namespace explframe::mm {
namespace {

class BuddyTest : public ::testing::Test {
 protected:
  BuddyTest() : db_(4096), buddy_(db_, 0, 4096, 0) {}
  PageFrameDatabase db_;
  BuddyAllocator buddy_;
};

TEST_F(BuddyTest, InitialStateAllFree) {
  EXPECT_EQ(buddy_.free_pages(), 4096u);
  // 4096 pages tile as 4 blocks of max order (1024 pages each).
  EXPECT_EQ(buddy_.free_blocks(kMaxOrder - 1), 4u);
  buddy_.verify();
}

TEST_F(BuddyTest, AllocOrderZero) {
  const Pfn p = buddy_.alloc_block(0);
  ASSERT_NE(p, kInvalidPfn);
  EXPECT_EQ(buddy_.free_pages(), 4095u);
  EXPECT_EQ(db_.at(p).state, PageState::kAllocated);
  buddy_.verify();
}

TEST_F(BuddyTest, SplitPathRecorded) {
  std::vector<SplitTraceEntry> trace;
  const Pfn p = buddy_.alloc_block(0, &trace);
  ASSERT_NE(p, kInvalidPfn);
  // One max-order block was split all the way down to order 0.
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].from_order, kMaxOrder - 1);
  EXPECT_EQ(trace[0].to_order, 0u);
  EXPECT_EQ(buddy_.stats().splits, kMaxOrder - 1);
  // The split left one free block at each order below max.
  for (std::uint32_t o = 0; o + 1 < kMaxOrder; ++o)
    EXPECT_EQ(buddy_.free_blocks(o), 1u) << o;
}

TEST_F(BuddyTest, FreeCoalescesBackToMaxOrder) {
  const Pfn p = buddy_.alloc_block(0);
  buddy_.free_block(p, 0);
  EXPECT_EQ(buddy_.free_pages(), 4096u);
  EXPECT_EQ(buddy_.free_blocks(kMaxOrder - 1), 4u);
  EXPECT_EQ(buddy_.stats().coalesces, kMaxOrder - 1);
  buddy_.verify();
}

TEST_F(BuddyTest, BuddyOfAllocatedBlockNotMerged) {
  const Pfn a = buddy_.alloc_block(0);
  const Pfn b = buddy_.alloc_block(0);
  ASSERT_EQ(b, a ^ 1);  // addresses are buddies
  buddy_.free_block(a, 0);
  // b still allocated: a must stay order 0.
  EXPECT_EQ(buddy_.free_blocks(0), 1u);
  buddy_.free_block(b, 0);
  EXPECT_EQ(buddy_.free_blocks(0), 0u);
  EXPECT_EQ(buddy_.free_pages(), 4096u);
  buddy_.verify();
}

TEST_F(BuddyTest, HigherOrderAllocation) {
  const Pfn p = buddy_.alloc_block(5);
  ASSERT_NE(p, kInvalidPfn);
  EXPECT_EQ(p % 32, 0u);  // naturally aligned
  EXPECT_EQ(buddy_.free_pages(), 4096u - 32);
  for (Pfn i = 0; i < 32; ++i)
    EXPECT_EQ(db_.at(p + i).state, PageState::kAllocated);
  buddy_.free_block(p, 5);
  EXPECT_EQ(buddy_.free_pages(), 4096u);
  buddy_.verify();
}

TEST_F(BuddyTest, ExhaustionFailsCleanly) {
  std::vector<Pfn> held;
  for (;;) {
    const Pfn p = buddy_.alloc_block(0);
    if (p == kInvalidPfn) break;
    held.push_back(p);
  }
  EXPECT_EQ(held.size(), 4096u);
  EXPECT_EQ(buddy_.free_pages(), 0u);
  EXPECT_GT(buddy_.stats().failed, 0u);
  // All pfns unique.
  std::set<Pfn> uniq(held.begin(), held.end());
  EXPECT_EQ(uniq.size(), held.size());
  for (const Pfn p : held) buddy_.free_block(p, 0);
  EXPECT_EQ(buddy_.free_blocks(kMaxOrder - 1), 4u);
  buddy_.verify();
}

TEST_F(BuddyTest, MixedOrderChurnPreservesInvariants) {
  Rng rng(2024);
  struct Held {
    Pfn pfn;
    std::uint32_t order;
  };
  std::vector<Held> held;
  for (int step = 0; step < 5000; ++step) {
    if (held.empty() || rng.bernoulli(0.55)) {
      const auto order = static_cast<std::uint32_t>(rng.uniform(6));
      const Pfn p = buddy_.alloc_block(order);
      if (p != kInvalidPfn) held.push_back({p, order});
    } else {
      const std::size_t i = rng.uniform(held.size());
      buddy_.free_block(held[i].pfn, held[i].order);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
    }
    if (step % 500 == 0) buddy_.verify();
  }
  for (const auto& h : held) buddy_.free_block(h.pfn, h.order);
  EXPECT_EQ(buddy_.free_pages(), 4096u);
  buddy_.verify();
}

TEST(BuddyOddSize, NonPowerOfTwoRangeTiles) {
  PageFrameDatabase db(1000);
  BuddyAllocator buddy(db, 0, 1000, 0);
  EXPECT_EQ(buddy.free_pages(), 1000u);
  buddy.verify();
  // Allocate everything as order 0 and give it back.
  std::vector<Pfn> held;
  for (;;) {
    const Pfn p = buddy.alloc_block(0);
    if (p == kInvalidPfn) break;
    held.push_back(p);
  }
  EXPECT_EQ(held.size(), 1000u);
  for (const Pfn p : held) buddy.free_block(p, 0);
  EXPECT_EQ(buddy.free_pages(), 1000u);
  buddy.verify();
}

TEST(BuddyOffsetRange, StartPfnRespected) {
  PageFrameDatabase db(2048);
  BuddyAllocator buddy(db, 1024, 1024, 3);
  const Pfn p = buddy.alloc_block(0);
  EXPECT_GE(p, 1024u);
  EXPECT_LT(p, 2048u);
  EXPECT_EQ(db.at(p).zone_index, 3);
  buddy.free_block(p, 0);
  buddy.verify();
}

TEST(BuddyInfo, ReportsPerOrderCounts) {
  PageFrameDatabase db(4096);
  BuddyAllocator buddy(db, 0, 4096, 0);
  (void)buddy.alloc_block(0);
  const auto info = buddy.buddyinfo();
  EXPECT_EQ(info[kMaxOrder - 1], 3u);
  for (std::uint32_t o = 0; o + 1 < kMaxOrder; ++o) EXPECT_EQ(info[o], 1u);
}

}  // namespace
}  // namespace explframe::mm
