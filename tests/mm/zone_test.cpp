#include "mm/zone.hpp"

#include <gtest/gtest.h>

namespace explframe::mm {
namespace {

TEST(Watermarks, ScaleWithZoneSize) {
  const auto small = Watermarks::for_zone_pages(1024);
  const auto large = Watermarks::for_zone_pages(65536);
  EXPECT_LT(small.min, large.min);
  EXPECT_LT(small.min, small.low);
  EXPECT_LT(small.low, small.high);
}

TEST(Watermarks, MinimumFloor) {
  const auto tiny = Watermarks::for_zone_pages(100);
  EXPECT_GE(tiny.min, 8u);
}

TEST(Zone, ConstructionAndAccessors) {
  PageFrameDatabase db(8192);
  Zone zone(ZoneType::kDma32, 1, db, 1024, 4096, 2, PcpConfig{});
  EXPECT_EQ(zone.type(), ZoneType::kDma32);
  EXPECT_EQ(zone.index(), 1);
  EXPECT_EQ(zone.start_pfn(), 1024u);
  EXPECT_EQ(zone.end_pfn(), 5120u);
  EXPECT_EQ(zone.pages(), 4096u);
  EXPECT_EQ(zone.num_cpus(), 2u);
  EXPECT_TRUE(zone.contains(1024));
  EXPECT_TRUE(zone.contains(5119));
  EXPECT_FALSE(zone.contains(1023));
  EXPECT_FALSE(zone.contains(5120));
  EXPECT_EQ(zone.name(), "DMA32");
}

TEST(Zone, PcpPagesAccounting) {
  PageFrameDatabase db(8192);
  Zone zone(ZoneType::kNormal, 0, db, 0, 8192, 2, PcpConfig{});
  EXPECT_EQ(zone.pcp_pages(), 0u);
  zone.pcp(0).put(1);
  zone.pcp(1).put(2);
  zone.pcp(1).put(3);
  EXPECT_EQ(zone.pcp_pages(), 3u);
}

TEST(Zone, FreePagesExcludesPcp) {
  PageFrameDatabase db(4096);
  Zone zone(ZoneType::kDma, 0, db, 0, 4096, 1, PcpConfig{});
  const auto before = zone.free_pages();
  const Pfn p = zone.buddy().alloc_block(0);
  EXPECT_EQ(zone.free_pages(), before - 1);
  db.at(p).state = PageState::kPcp;
  zone.pcp(0).put(p);
  // Frame moved to pcp, not back to buddy: zone free count unchanged.
  EXPECT_EQ(zone.free_pages(), before - 1);
  EXPECT_EQ(zone.pcp_pages(), 1u);
}

TEST(ZoneTypeNames, AllNamed) {
  EXPECT_STREQ(to_string(ZoneType::kDma), "DMA");
  EXPECT_STREQ(to_string(ZoneType::kDma32), "DMA32");
  EXPECT_STREQ(to_string(ZoneType::kNormal), "Normal");
}

}  // namespace
}  // namespace explframe::mm
