// 32-bit (HIGHMEM) zone layout — paper §III describes both architectures.
#include <gtest/gtest.h>

#include "mm/page_allocator.hpp"

namespace explframe::mm {
namespace {

AllocatorConfig cfg32(std::uint64_t mib) {
  AllocatorConfig cfg;
  cfg.total_bytes = mib * kMiB;
  cfg.arch = Arch::kX86_32;
  cfg.num_cpus = 1;
  return cfg;
}

TEST(Zone32, CarvingWithHighmem) {
  PageAllocator alloc(cfg32(2048));  // 2 GiB machine
  ASSERT_EQ(alloc.zone_count(), 3u);
  EXPECT_EQ(alloc.zone(0).type(), ZoneType::kDma);
  EXPECT_EQ(alloc.zone(1).type(), ZoneType::kNormal);
  EXPECT_EQ(alloc.zone(2).type(), ZoneType::kHighMem);
  // 16 MiB and 896 MiB boundaries.
  EXPECT_EQ(alloc.zone(0).end_pfn(), (16 * kMiB) / kPageSize);
  EXPECT_EQ(alloc.zone(1).start_pfn(), (16 * kMiB) / kPageSize);
  EXPECT_EQ(alloc.zone(1).end_pfn(), (896 * kMiB) / kPageSize);
  EXPECT_EQ(alloc.zone(2).start_pfn(), (896 * kMiB) / kPageSize);
  EXPECT_EQ(alloc.zone(2).end_pfn(), (2048ull * kMiB) / kPageSize);
  EXPECT_STREQ(to_string(ZoneType::kHighMem), "HighMem");
}

TEST(Zone32, SmallMachineHasNoHighmem) {
  PageAllocator alloc(cfg32(512));
  ASSERT_EQ(alloc.zone_count(), 2u);
  EXPECT_EQ(alloc.zone(0).type(), ZoneType::kDma);
  EXPECT_EQ(alloc.zone(1).type(), ZoneType::kNormal);
}

TEST(Zone32, UserAllocationsPreferHighmem) {
  PageAllocator alloc(cfg32(2048));
  const auto a = alloc.alloc_pages(0, GfpFlags::user(), 0, 1);
  ASSERT_TRUE(a);
  EXPECT_EQ(alloc.zone(a->zone_index).type(), ZoneType::kHighMem);
}

TEST(Zone32, KernelAllocationsNeverUseHighmem) {
  PageAllocator alloc(cfg32(2048));
  for (int i = 0; i < 200; ++i) {
    const auto a = alloc.alloc_pages(0, GfpFlags::kernel(), 0, 1);
    ASSERT_TRUE(a);
    EXPECT_NE(alloc.zone(a->zone_index).type(), ZoneType::kHighMem);
  }
}

TEST(Zone32, ZonelistOrderForHighUser) {
  PageAllocator alloc(cfg32(2048));
  const auto list = alloc.zonelist(GfpZonePreference::kHighUser);
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(alloc.zone(list[0]).type(), ZoneType::kHighMem);
  EXPECT_EQ(alloc.zone(list[1]).type(), ZoneType::kNormal);
  EXPECT_EQ(alloc.zone(list[2]).type(), ZoneType::kDma);
}

TEST(Zone32, ZonelistOrderForKernel) {
  PageAllocator alloc(cfg32(2048));
  const auto list = alloc.zonelist(GfpZonePreference::kNormal);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(alloc.zone(list[0]).type(), ZoneType::kNormal);
  EXPECT_EQ(alloc.zone(list[1]).type(), ZoneType::kDma);
}

TEST(Zone64, HighUserFallsBackToNormalOn64Bit) {
  AllocatorConfig cfg;
  cfg.total_bytes = 64 * kMiB;
  cfg.num_cpus = 1;
  PageAllocator alloc(cfg);
  const auto a = alloc.alloc_pages(0, GfpFlags::user(), 0, 1);
  ASSERT_TRUE(a);
  EXPECT_EQ(alloc.zone(a->zone_index).type(), ZoneType::kDma32);
  const auto list = alloc.zonelist(GfpZonePreference::kHighUser);
  EXPECT_EQ(list.size(), 2u);  // no HIGHMEM zone on x86-64
}

TEST(Zone32, PcpReuseWorksInHighmem) {
  // The paper's exploit mechanism is identical inside ZONE_HIGHMEM: caches
  // are per (zone, cpu).
  PageAllocator alloc(cfg32(2048));
  const auto a = alloc.alloc_pages(0, GfpFlags::user(), 0, 1);
  ASSERT_TRUE(a);
  EXPECT_EQ(alloc.zone(a->zone_index).type(), ZoneType::kHighMem);
  alloc.free_pages(a->pfn, 0, 0);
  const auto b = alloc.alloc_pages(0, GfpFlags::user(), 0, 2);
  ASSERT_TRUE(b);
  EXPECT_EQ(b->pfn, a->pfn);
}

}  // namespace
}  // namespace explframe::mm
