#include "mm/page_allocator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "support/rng.hpp"

namespace explframe::mm {
namespace {

AllocatorConfig default_cfg() {
  AllocatorConfig cfg;
  cfg.total_bytes = 64 * kMiB;
  cfg.num_cpus = 2;
  return cfg;
}

TEST(PageAllocator, ZoneCarvingSmallMachine) {
  PageAllocator alloc(default_cfg());
  // 64 MiB < 4 GiB: DMA (16 MiB minus reservation) + DMA32, no NORMAL.
  ASSERT_EQ(alloc.zone_count(), 2u);
  EXPECT_EQ(alloc.zone(0).type(), ZoneType::kDma);
  EXPECT_EQ(alloc.zone(1).type(), ZoneType::kDma32);
  EXPECT_EQ(alloc.zone(0).start_pfn(), 256u);  // 1 MiB reserved
  EXPECT_EQ(alloc.zone(0).end_pfn(), 4096u);   // 16 MiB boundary
  EXPECT_EQ(alloc.zone(1).end_pfn(), 16384u);
}

TEST(PageAllocator, ZonelistFallbackOrder) {
  PageAllocator alloc(default_cfg());
  const auto normal = alloc.zonelist(GfpZonePreference::kNormal);
  ASSERT_EQ(normal.size(), 2u);
  EXPECT_EQ(alloc.zone(normal[0]).type(), ZoneType::kDma32);
  EXPECT_EQ(alloc.zone(normal[1]).type(), ZoneType::kDma);
  const auto dma = alloc.zonelist(GfpZonePreference::kDma);
  ASSERT_EQ(dma.size(), 1u);
  EXPECT_EQ(alloc.zone(dma[0]).type(), ZoneType::kDma);
}

TEST(PageAllocator, OrderZeroComesFromPreferredZonePcp) {
  PageAllocator alloc(default_cfg());
  const auto a = alloc.alloc_pages(0, GfpFlags::user(), 0, 1);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->from_pcp);
  EXPECT_EQ(alloc.zone(a->zone_index).type(), ZoneType::kDma32);
  EXPECT_EQ(alloc.frames().at(a->pfn).state, PageState::kAllocated);
  EXPECT_EQ(alloc.frames().at(a->pfn).owner_task, 1);
  alloc.verify();
}

TEST(PageAllocator, FreedPageReallocatedToSameCpu) {
  // §V of the paper: free then alloc on the same CPU returns the same
  // frame, with probability ~1.
  PageAllocator alloc(default_cfg());
  const auto a = alloc.alloc_pages(0, GfpFlags::user(), 0, 1);
  ASSERT_TRUE(a);
  alloc.free_pages(a->pfn, 0, 0);
  const auto b = alloc.alloc_pages(0, GfpFlags::user(), 0, 2);
  ASSERT_TRUE(b);
  EXPECT_EQ(b->pfn, a->pfn);
}

TEST(PageAllocator, FreedPageNotSeenByOtherCpu) {
  PageAllocator alloc(default_cfg());
  const auto a = alloc.alloc_pages(0, GfpFlags::user(), 0, 1);
  ASSERT_TRUE(a);
  alloc.free_pages(a->pfn, 0, 0);
  // CPU 1 allocates: must not receive CPU 0's cached frame.
  const auto b = alloc.alloc_pages(0, GfpFlags::user(), 1, 2);
  ASSERT_TRUE(b);
  EXPECT_NE(b->pfn, a->pfn);
}

TEST(PageAllocator, PcpRefillBatchSize) {
  PageAllocator alloc(default_cfg());
  const auto a = alloc.alloc_pages(0, GfpFlags::user(), 0, 1);
  ASSERT_TRUE(a);
  // The first order-0 miss pulls one full batch from buddy and hands out a
  // single page from it.
  EXPECT_EQ(alloc.stats().pcp_refills, 1u);
  Zone& zone = alloc.zone(a->zone_index);
  EXPECT_EQ(zone.pcp(0).count() + 1, default_cfg().pcp.batch);
}

TEST(PageAllocator, PcpDrainsWhenOverHigh) {
  AllocatorConfig cfg = default_cfg();
  cfg.pcp.high = 8;
  cfg.pcp.batch = 4;
  PageAllocator alloc(cfg);
  std::vector<Pfn> held;
  for (int i = 0; i < 16; ++i) {
    const auto a = alloc.alloc_pages(0, GfpFlags::user(), 0, 1);
    ASSERT_TRUE(a);
    held.push_back(a->pfn);
  }
  for (const Pfn p : held) alloc.free_pages(p, 0, 0);
  Zone& zone = *alloc.zone_of(held[0]);
  // Cache was repeatedly trimmed back to <= high.
  EXPECT_LE(zone.pcp(0).count(), cfg.pcp.high + 1);
  alloc.verify();
}

TEST(PageAllocator, HighOrderBypassesPcp) {
  PageAllocator alloc(default_cfg());
  const auto a = alloc.alloc_pages(4, GfpFlags::user(), 0, 1);
  ASSERT_TRUE(a);
  EXPECT_FALSE(a->from_pcp);
  EXPECT_EQ(a->order, 4u);
  EXPECT_EQ(a->pfn % 16, 0u);
  alloc.free_pages(a->pfn, 4, 0);
  alloc.verify();
}

TEST(PageAllocator, DmaPreferenceServedFromDmaZone) {
  PageAllocator alloc(default_cfg());
  const auto a = alloc.alloc_pages(0, GfpFlags::dma(), 0, 1);
  ASSERT_TRUE(a);
  EXPECT_EQ(alloc.zone(a->zone_index).type(), ZoneType::kDma);
}

TEST(PageAllocator, FallbackWhenPreferredExhausted) {
  PageAllocator alloc(default_cfg());
  // Keep allocating order-0 user pages: once DMA32 drops under its
  // watermark the allocator must fall back to ZONE_DMA before giving up.
  bool saw_dma32 = false;
  bool saw_dma = false;
  for (;;) {
    const auto a = alloc.alloc_pages(0, GfpFlags::user(), 0, 1);
    if (!a) break;
    const auto type = alloc.zone(a->zone_index).type();
    saw_dma32 |= type == ZoneType::kDma32;
    saw_dma |= type == ZoneType::kDma;
  }
  EXPECT_TRUE(saw_dma32);
  EXPECT_TRUE(saw_dma);
  EXPECT_GT(alloc.stats().zone_fallbacks, 0u);
  EXPECT_GT(alloc.stats().watermark_skips, 0u);
}

TEST(PageAllocator, OomReturnsNullopt) {
  AllocatorConfig cfg;
  cfg.total_bytes = 32 * kMiB;
  cfg.num_cpus = 1;
  PageAllocator alloc(cfg);
  std::size_t got = 0;
  while (alloc.alloc_pages(0, GfpFlags::user(), 0, 1)) ++got;
  EXPECT_GT(got, 0u);
  EXPECT_GT(alloc.stats().failures, 0u);
  // Watermarks keep a reserve: we can't take literally everything.
  EXPECT_LT(got, alloc.total_pages());
}

TEST(PageAllocator, AtomicDipsBelowMinWatermark) {
  AllocatorConfig cfg;
  cfg.total_bytes = 32 * kMiB;
  cfg.num_cpus = 1;
  PageAllocator alloc(cfg);
  while (alloc.alloc_pages(0, GfpFlags::user(), 0, 1)) {
  }
  GfpFlags atomic;
  atomic.atomic = true;
  EXPECT_TRUE(alloc.alloc_pages(0, atomic, 0, 1).has_value());
}

TEST(PageAllocator, DrainAllPcpReturnsFramesToBuddy) {
  PageAllocator alloc(default_cfg());
  const auto a = alloc.alloc_pages(0, GfpFlags::user(), 0, 1);
  ASSERT_TRUE(a);
  alloc.free_pages(a->pfn, 0, 0);
  const auto free_before = alloc.global_free_pages();
  alloc.drain_all_pcp();
  EXPECT_GT(alloc.global_free_pages(), free_before);
  EXPECT_EQ(alloc.frames().at(a->pfn).state, PageState::kFreeBuddy);
  alloc.verify();
}

TEST(PageAllocator, ChurnKeepsAccountingConsistent) {
  PageAllocator alloc(default_cfg());
  Rng rng(99);
  struct Held {
    Pfn pfn;
    std::uint32_t order;
    std::uint32_t cpu;
  };
  std::vector<Held> held;
  for (int step = 0; step < 20000; ++step) {
    if (held.empty() || rng.bernoulli(0.55)) {
      const auto order = static_cast<std::uint32_t>(rng.uniform(4));
      const auto cpu = static_cast<std::uint32_t>(rng.uniform(2));
      const auto a = alloc.alloc_pages(order, GfpFlags::user(), cpu, 1);
      if (a) held.push_back({a->pfn, a->order, cpu});
    } else {
      const std::size_t i = rng.uniform(held.size());
      alloc.free_pages(held[i].pfn, held[i].order, held[i].cpu);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  alloc.verify();
  // No frame is held twice.
  std::set<Pfn> seen;
  for (const auto& h : held) {
    for (Pfn i = 0; i < (Pfn{1} << h.order); ++i) {
      EXPECT_TRUE(seen.insert(h.pfn + i).second);
      EXPECT_EQ(alloc.frames().at(h.pfn + i).state, PageState::kAllocated);
    }
  }
}

TEST(PageAllocator, AllocSequenceMonotonic) {
  PageAllocator alloc(default_cfg());
  const auto a = alloc.alloc_pages(0, GfpFlags::user(), 0, 1);
  const auto b = alloc.alloc_pages(0, GfpFlags::user(), 0, 1);
  ASSERT_TRUE(a && b);
  EXPECT_LT(alloc.frames().at(a->pfn).alloc_seq,
            alloc.frames().at(b->pfn).alloc_seq);
}

TEST(PageAllocator, ColdFreeDoesNotPreemptHotHead) {
  PageAllocator alloc(default_cfg());
  const auto hot = alloc.alloc_pages(0, GfpFlags::user(), 0, 1);
  const auto cold = alloc.alloc_pages(0, GfpFlags::user(), 0, 1);
  ASSERT_TRUE(hot && cold);
  alloc.free_pages(hot->pfn, 0, 0);
  alloc.free_pages(cold->pfn, 0, 0, /*cold=*/true);
  const auto next = alloc.alloc_pages(0, GfpFlags::user(), 0, 2);
  ASSERT_TRUE(next);
  EXPECT_EQ(next->pfn, hot->pfn);
}

}  // namespace
}  // namespace explframe::mm
