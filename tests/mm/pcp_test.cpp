#include "mm/pcp.hpp"

#include <gtest/gtest.h>

namespace explframe::mm {
namespace {

PcpConfig small_cfg() { return {.high = 8, .batch = 3, .lifo = true}; }

TEST(PerCpuPageCache, LifoReturnsMostRecentlyFreed) {
  PerCpuPageCache cache(small_cfg());
  cache.put(10);
  cache.put(20);
  cache.put(30);
  EXPECT_EQ(cache.take(), 30u);
  EXPECT_EQ(cache.take(), 20u);
  EXPECT_EQ(cache.take(), 10u);
  EXPECT_TRUE(cache.empty());
}

TEST(PerCpuPageCache, FreedFrameIsNextAllocation) {
  // The paper's core property: the frame a process just released is the
  // first frame handed out on the next small allocation.
  PerCpuPageCache cache(small_cfg());
  cache.refill({1, 2, 3});
  cache.put(99);  // "munmap" by the attacker
  EXPECT_EQ(cache.take(), 99u);
}

TEST(PerCpuPageCache, ColdFreesGoToTail) {
  PerCpuPageCache cache(small_cfg());
  cache.put(1);
  cache.put(2, /*cold=*/true);
  EXPECT_EQ(cache.take(), 1u);
  EXPECT_EQ(cache.take(), 2u);
}

TEST(PerCpuPageCache, ColdAllocTakesFromTail) {
  PerCpuPageCache cache(small_cfg());
  cache.put(1);
  cache.put(2);
  EXPECT_EQ(cache.take(/*cold=*/true), 1u);
}

TEST(PerCpuPageCache, FifoModeForAblation) {
  PcpConfig cfg = small_cfg();
  cfg.lifo = false;
  PerCpuPageCache cache(cfg);
  cache.put(1);
  cache.put(2);
  cache.put(3);
  EXPECT_EQ(cache.take(), 1u);
  EXPECT_EQ(cache.take(), 2u);
}

TEST(PerCpuPageCache, PutSignalsOverHigh) {
  PerCpuPageCache cache(small_cfg());
  for (Pfn p = 0; p < 8; ++p) EXPECT_FALSE(cache.put(p));
  EXPECT_TRUE(cache.put(100));  // count now 9 > high = 8
}

TEST(PerCpuPageCache, PopColdDrainsOldestFirst) {
  PerCpuPageCache cache(small_cfg());
  cache.put(1);
  cache.put(2);
  cache.put(3);
  const auto drained = cache.pop_cold(2);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0], 1u);
  EXPECT_EQ(drained[1], 2u);
  EXPECT_EQ(cache.count(), 1u);
  // Hot page survives the drain — the planted frame outlives pressure.
  EXPECT_EQ(cache.take(), 3u);
}

TEST(PerCpuPageCache, PopColdMoreThanAvailable) {
  PerCpuPageCache cache(small_cfg());
  cache.put(5);
  const auto drained = cache.pop_cold(10);
  EXPECT_EQ(drained.size(), 1u);
  EXPECT_TRUE(cache.empty());
}

TEST(PerCpuPageCache, RefillAppendsCold) {
  PerCpuPageCache cache(small_cfg());
  cache.put(42);          // hot
  cache.refill({7, 8, 9});  // bulk from buddy, cold end
  EXPECT_EQ(cache.take(), 42u);
  EXPECT_EQ(cache.take(), 7u);
}

TEST(PerCpuPageCache, PeekHotFirstNonDestructive) {
  PerCpuPageCache cache(small_cfg());
  cache.put(1);
  cache.put(2);
  const auto view = cache.peek();
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0], 2u);
  EXPECT_EQ(view[1], 1u);
  EXPECT_EQ(cache.count(), 2u);
}

TEST(PerCpuPageCache, StatsTrackTraffic) {
  PerCpuPageCache cache(small_cfg());
  cache.refill({1, 2});
  cache.put(3);
  (void)cache.take();
  (void)cache.pop_cold(1);
  EXPECT_EQ(cache.stats().refills, 1u);
  EXPECT_EQ(cache.stats().frees, 1u);
  EXPECT_EQ(cache.stats().alloc_hits, 1u);
  EXPECT_EQ(cache.stats().drains, 1u);
  EXPECT_EQ(cache.stats().drained_pages, 1u);
}

}  // namespace
}  // namespace explframe::mm
