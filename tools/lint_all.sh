#!/bin/sh
# One local entry point for every static gate CI runs:
#
#   tools/lint_headers.sh         header-doc lint (Doxygen coverage)
#   tools/check_handbook.sh       handbook covers every scenario/sweep
#   tools/lint_determinism.sh     determinism contract (+ its self-test
#                                 against the committed negative fixture)
#   tools/lint_tidy.sh            NOLINT hygiene + clang-tidy when installed
#
# Usage: tools/lint_all.sh [build-dir]   (build-dir is forwarded to the
# clang-tidy gate for compile_commands.json; default: build)
#
# Runs every gate even after one fails, so a single invocation reports the
# full set of problems; exits non-zero if ANY gate failed.
set -u

cd "$(dirname "$0")/.." || exit 2
build_dir="${1:-build}"

status=0
run() {
  echo "==> $*"
  "$@" || status=1
  echo
}

run tools/lint_headers.sh
run tools/check_handbook.sh
run tools/lint_determinism.sh
run tools/lint_determinism.sh --self-test
run tools/lint_tidy.sh "$build_dir"

if [ "$status" -ne 0 ]; then
  echo "lint_all: FAILED (one or more gates above)" >&2
else
  echo "lint_all: all gates OK"
fi
exit $status
