#!/bin/sh
# Handbook-coverage lint (run by CI next to lint_headers.sh).
#
# docs/HANDBOOK.md is the task-oriented front door to the experiment
# catalogue; a scenario or sweep that is registered in code but missing
# from the handbook's tables is invisible to a reader. This script greps
# the registration sites for every `s.name = "..."` / `name = ...` entry
# and fails unless each name appears (backquoted) in docs/HANDBOOK.md.
#
# Registration sites are the single source of truth:
#   src/scenario/registry.cpp  (Scenario entries, `s.name = "<name>";`)
#   src/sweep/registry.cpp     (SweepSpec literals, `name = <name>`)
#
# The time-travel debugger (`explsim debug`) is covered the same way:
# every REPL command must be documented (backquoted) in the handbook.
set -u

cd "$(dirname "$0")/.." || exit 2

scenarios=$(sed -n 's/^[[:space:]]*s\.name = "\([A-Za-z0-9_.-]*\)";$/\1/p' \
    src/scenario/registry.cpp)
sweeps=$(sed -n 's/^name = \([A-Za-z0-9_.-]*\)$/\1/p' src/sweep/registry.cpp)

if [ -z "$scenarios" ] || [ -z "$sweeps" ]; then
  echo "check_handbook: failed to extract registered names (did the" >&2
  echo "registration syntax change? update this script's patterns)" >&2
  exit 2
fi

status=0
for name in $scenarios $sweeps; do
  if ! grep -q "\`$name\`" docs/HANDBOOK.md; then
    echo "docs/HANDBOOK.md: error: registered entry '$name' is missing" \
         "from the handbook tables" >&2
    status=1
  fi
done

# Debugger coverage: `explsim debug` and each REPL command must appear
# backquoted in the handbook's time-travel chapter.
debug_cmds="debug step run-until rewind bisect-flip status"
for cmd in $debug_cmds; do
  if ! grep -q "\`$cmd" docs/HANDBOOK.md; then
    echo "docs/HANDBOOK.md: error: debugger command '$cmd' is not" \
         "documented in the time-travel chapter" >&2
    status=1
  fi
done

# Sharded-run and daemon coverage: the shard/merge CLI surface and every
# `explsimd` subcommand must appear backquoted in the handbook's sharded
# runs chapter (a distribution feature nobody can find is not a feature).
shard_cmds="--shard merge --merge-from explsimd serve submit report"
for cmd in $shard_cmds; do
  if ! grep -q -- "\`$cmd" docs/HANDBOOK.md; then
    echo "docs/HANDBOOK.md: error: shard/daemon command '$cmd' is not" \
         "documented in the sharded-runs chapter" >&2
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "handbook lint failed (add the entries above to docs/HANDBOOK.md)" >&2
else
  echo "handbook lint: OK ($(echo "$scenarios" | wc -l) scenarios," \
       "$(echo "$sweeps" | wc -l) sweeps," \
       "$(echo "$debug_cmds" | wc -w) debugger commands," \
       "$(echo "$shard_cmds" | wc -w) shard/daemon commands covered)"
fi
exit $status
