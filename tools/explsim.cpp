// explsim — the unified experiment driver over the scenario registry.
//
//   explsim list                      # the scenario catalogue
//   explsim describe <name> [--scn]   # handbook entry / canonical .scn text
//   explsim run <name|file.scn>       # run one scenario, print its report
//   explsim all [--check]             # (re)generate docs/results/, or verify
//
//   explsim sweep list                # the ablation-grid catalogue
//   explsim sweep describe <name> [--sweep]
//   explsim sweep run <name|file.sweep> [--resume] [--shard=I/N]
//   explsim sweep merge <name|file.sweep> <ckpt...> [--out=DIR]
//   explsim sweep all [--check]       # (re)generate docs/results/sweeps/
//   explsim sweep all --shard=I/N --out=DIR     # one shard of every grid
//   explsim sweep all --merge-from=DIR [--check]  # reassemble + verify
//
// `run` accepts either a registered name or a path (anything containing
// '/' or ending in ".scn"/".sweep" is treated as a path), so a registered
// experiment can be exported with `describe --scn`/`--sweep`, edited and
// re-run without recompiling.
//
// `all` regenerates the reproduction handbook (docs/results/ for
// scenarios, docs/results/sweeps/ for grids): markdown + CSV per entry
// plus a README.md index. With --check nothing is written; the regenerated
// bytes are compared against the checked-in files and any drift is a
// non-zero exit — the CI gate that keeps the handbook in sync with code.
//
// Sweeps checkpoint each completed grid point (fsynced, one record per
// line) next to their output; an interrupted `sweep run`/`sweep all`
// rerun with --resume skips the recorded points and still emits
// byte-identical reports. A checkpoint is bound to the spec hash — edit
// the spec (or its base scenario, or any seed) and the resume refuses.
//
// `--shard=I/N` runs only the round-robin subset i % N == I-1 of a grid's
// points and *keeps* the checkpoint on completion — the checkpoint is the
// shard's output. `sweep merge` (one grid) and `sweep all --merge-from`
// (every grid) reassemble shard checkpoints into reports byte-identical
// to an unsharded run: spec hashes are validated, torn final lines
// tolerated, identical duplicate records deduplicated, conflicting ones
// refused, and a missing point is an error naming it.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "io/fs.hpp"
#include "scenario/debug.hpp"
#include "scenario/registry.hpp"
#include "scenario/report.hpp"
#include "support/table.hpp"
#include "sweep/registry.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"

using namespace explframe;
using namespace explframe::scenario;

namespace {

int usage(std::ostream& os, int code) {
  os << "usage: explsim <command> [options]\n"
        "\n"
        "scenario commands:\n"
        "  list                      list registered scenarios\n"
        "  describe <name> [--scn]   show one scenario (--scn: canonical\n"
        "                            .scn text only, suitable for a file)\n"
        "  run <name|file.scn>      run one scenario and print its report\n"
        "      [--threads=N]         worker threads (wall-clock only)\n"
        "      [--out=DIR]           also write <name>.md + <name>.csv\n"
        "  all [--out=DIR]           run every scenario and write the\n"
        "                            handbook (default DIR: docs/results)\n"
        "      [--check]             write nothing; fail on any byte of\n"
        "                            drift vs the checked-in reports\n"
        "      [--threads=N]         worker threads (wall-clock only)\n"
        "  debug <name|file.scn>     time-travel debugger: replay one trial\n"
        "                            event by event over machine snapshots\n"
        "      [--trial=N]           trial to reproduce (default 0)\n"
        "      REPL: step [n] | run-until <event> | rewind [n] |\n"
        "            bisect-flip <byte> | status | events | help | quit\n"
        "\n"
        "sweep commands (multi-dimensional scenario grids):\n"
        "  sweep list                list registered sweeps\n"
        "  sweep describe <name> [--sweep]\n"
        "                            show one sweep (--sweep: canonical\n"
        "                            .sweep text only)\n"
        "  sweep run <name|file.sweep>\n"
        "                            run one grid and print its summary\n"
        "      [--out=DIR]           also write <name>.md + <name>.csv\n"
        "      [--threads=N]         point-stealing workers (wall-clock\n"
        "                            only; results are identical)\n"
        "      [--checkpoint=PATH]   completed-point log (default:\n"
        "                            <name>.ckpt next to the output)\n"
        "      [--resume]            skip points recorded in the\n"
        "                            checkpoint instead of starting over\n"
        "      [--shard=I/N]         run only round-robin shard I of N\n"
        "                            (1-based) and keep the checkpoint —\n"
        "                            it is the shard's output for merge\n"
        "  sweep merge <name|file.sweep> <ckpt...>\n"
        "                            reassemble shard checkpoints into one\n"
        "                            grid; reports are byte-identical to\n"
        "                            an unsharded run\n"
        "      [--out=DIR]           also write <name>.md + <name>.csv\n"
        "  sweep all [--out=DIR]     run every sweep and write the grids\n"
        "                            (default DIR: docs/results/sweeps)\n"
        "      [--check]             write nothing; fail on drift\n"
        "      [--threads=N] [--resume]\n"
        "      [--shard=I/N]         run shard I of every grid, writing\n"
        "                            <name>.shard-I-of-N.ckpt under --out\n"
        "      [--merge-from=DIR]    skip execution; merge every grid's\n"
        "                            shard checkpoints found in DIR (with\n"
        "                            --check: verify the merged reports\n"
        "                            against the committed goldens)\n";
  return code;
}

// Both helpers route through the io::FileSystem seam, with the default
// bounded retry on transient errors. Golden/report emission uses the
// non-durable io::write_file — these artifacts are committed to git, so
// the diff (not fsync) is the safety net; the daemon's spool, where
// durability IS the contract, uses io::durable_write instead.
std::optional<std::string> read_file(const std::string& path) {
  std::string content;
  const io::Status read = io::with_retry(io::kDefaultRetryAttempts, [&] {
    return io::real().read_file(path, &content);
  });
  if (!read.ok()) return std::nullopt;
  return content;
}

bool write_file(const std::string& path, const std::string& content) {
  return io::with_retry(io::kDefaultRetryAttempts, [&] {
           return io::write_file(io::real(), path, content);
         })
      .ok();
}

/// True when a `run` operand names a file rather than a registry entry.
bool is_path_operand(const std::string& operand, const char* extension) {
  if (operand.find('/') != std::string::npos) return true;
  const std::size_t n = std::strlen(extension);
  return operand.size() > n &&
         operand.compare(operand.size() - n, n, extension) == 0;
}

std::optional<Scenario> resolve_scenario(const std::string& operand) {
  if (is_path_operand(operand, ".scn")) {
    const auto text = read_file(operand);
    if (!text) {
      std::cerr << "explsim: cannot read '" << operand << "'\n";
      return std::nullopt;
    }
    std::string error;
    const auto s = Scenario::from_scn(*text, &error);
    if (!s) {
      std::cerr << "explsim: " << operand << ": " << error << "\n";
      return std::nullopt;
    }
    return s;
  }
  const Scenario* s = Registry::builtin().find(operand);
  if (!s) {
    std::cerr << "explsim: no scenario named '" << operand
              << "' (try: explsim list)\n";
    return std::nullopt;
  }
  return *s;
}

std::optional<sweep::SweepSpec> resolve_sweep(const std::string& operand) {
  if (is_path_operand(operand, ".sweep")) {
    const auto text = read_file(operand);
    if (!text) {
      std::cerr << "explsim: cannot read '" << operand << "'\n";
      return std::nullopt;
    }
    std::string error;
    const auto spec = sweep::SweepSpec::from_sweep(*text, &error);
    if (!spec) {
      std::cerr << "explsim: " << operand << ": " << error << "\n";
      return std::nullopt;
    }
    return spec;
  }
  const sweep::SweepSpec* spec = sweep::Registry::builtin().find(operand);
  if (!spec) {
    std::cerr << "explsim: no sweep named '" << operand
              << "' (try: explsim sweep list)\n";
    return std::nullopt;
  }
  return *spec;
}

int cmd_list() {
  Table t({"scenario", "cipher", "defence", "trials", "title"});
  for (const Scenario& s : Registry::builtin().all())
    t.row(s.name, crypto::to_string(s.cipher), to_string(s.defence), s.trials,
          s.title);
  t.print(std::cout);
  std::cout << t.rows() << " scenarios. `explsim describe <name>` for the "
            << "full entry, `explsim run <name>` to reproduce it.\n";
  return 0;
}

int cmd_describe(const std::string& name, bool scn_only) {
  const Scenario* s = Registry::builtin().find(name);
  if (!s) {
    std::cerr << "explsim: no scenario named '" << name << "'\n";
    return 1;
  }
  if (scn_only) {
    std::cout << s->to_scn();
    return 0;
  }
  std::cout << s->title << "\n\n" << s->description << "\n\npaper ref: "
            << s->paper_ref << "\n\ncanonical .scn (explsim describe " << name
            << " --scn > my.scn):\n\n" << s->to_scn();
  return 0;
}

/// Print the human-facing sweep summary for one finished scenario.
void print_summary(const ScenarioResult& result) {
  const attack::CampaignAggregate& agg = result.aggregate;
  std::cout << "\n== " << result.scenario.name << ": "
            << result.scenario.title << " ==\n\n";
  agg.phase_table().print(std::cout);
  std::cout << "mean rows templated: " << agg.rows_scanned.mean();
  if (agg.ciphertexts_used.count() > 0)
    std::cout << "; mean ciphertexts to key: " << agg.ciphertexts_used.mean();
  std::cout << "; mean simulated attack s: " << agg.sim_seconds.mean()
            << "\nmean simulated templating s: "
            << agg.template_sim_seconds.mean() << " ("
            << agg.template_wall_seconds << " host s total)\n"
            << "wall clock: " << agg.wall_seconds << " s ("
            << agg.trials_per_second() << " trials/sec)\n";
}

int cmd_run(const std::string& operand, std::uint32_t threads,
            const std::string& out_dir) {
  const auto s = resolve_scenario(operand);
  if (!s) return 1;
  const ScenarioResult result = run_scenario(*s, threads);
  print_summary(result);
  if (!out_dir.empty()) {
    const std::string md = out_dir + "/" + s->name + ".md";
    const std::string csv = out_dir + "/" + s->name + ".csv";
    if (!write_file(md, markdown_report(result)) ||
        !write_file(csv, csv_report(result))) {
      std::cerr << "explsim: cannot write reports under '" << out_dir
                << "'\n";
      return 1;
    }
    std::cout << "wrote " << md << " and " << csv << "\n";
  }
  return 0;
}

/// The `explsim debug` REPL over one scenario::DebugSession. A thin
/// readline/print wrapper: every line is parsed and executed by the
/// library's scenario::execute_debug_command (which the property tests
/// fuzz), so the binary and the tests exercise the same parser.
int cmd_debug(const std::string& operand, std::uint32_t trial) {
  const auto s = resolve_scenario(operand);
  if (!s) return 1;
  std::cout << "templating trial " << trial << " of " << s->name << "...\n";
  DebugSession session(*s, trial);
  std::cout << session.status();
  if (!session.template_found()) return 0;
  std::cout << "commands: step [n] | run-until <event> | rewind [n] | "
               "bisect-flip <byte> | status | events | help | quit\n";

  std::string line;
  while (std::cout << "(explsim) " << std::flush &&
         std::getline(std::cin, line)) {
    const auto outcome = execute_debug_command(session, line);
    switch (outcome.kind) {
      case DebugCommandOutcome::Kind::kQuit:
        return 0;
      case DebugCommandOutcome::Kind::kEmpty:
        break;
      case DebugCommandOutcome::Kind::kError:
        std::cout << "error: " << outcome.output << "\n";
        break;
      case DebugCommandOutcome::Kind::kOk:
        std::cout << outcome.output;
        break;
    }
  }
  return 0;
}

/// Shared tail of every `all --check`: report issues or success.
int finish_check(const std::vector<std::string>& issues, std::size_t total,
                 const char* regenerate_command) {
  for (const std::string& issue : issues) std::cerr << issue << "\n";
  if (!issues.empty()) {
    std::cerr << issues.size() << " report(s) out of date — regenerate with "
              << "`" << regenerate_command << "` and commit the diff.\n";
    return 1;
  }
  std::cout << "all " << total << " handbook files match.\n";
  return 0;
}

int write_files(
    const std::vector<std::pair<std::string, std::string>>& files) {
  for (const auto& [path, content] : files) {
    if (!write_file(path, content)) {
      std::cerr << "explsim: cannot write '" << path
                << "' (run from the repo root, or pass --out=DIR)\n";
      return 1;
    }
  }
  return 0;
}

int cmd_all(const std::string& out_dir, bool check, std::uint32_t threads) {
  std::vector<ScenarioResult> results;
  std::vector<std::pair<std::string, std::string>> files;  // path, content
  for (const Scenario& s : Registry::builtin().all()) {
    std::cout << (check ? "checking " : "running ") << s.name << "..."
              << std::flush;
    results.push_back(run_scenario(s, threads));
    std::cout << " done (" << results.back().aggregate.wall_seconds
              << " s)\n";
    files.emplace_back(out_dir + "/" + s.name + ".md",
                       markdown_report(results.back()));
    files.emplace_back(out_dir + "/" + s.name + ".csv",
                       csv_report(results.back()));
  }
  files.emplace_back(out_dir + "/README.md", markdown_index(results));

  if (check)
    return finish_check(sweep::check_generated_files(files, out_dir),
                        files.size(), "explsim all");
  if (const int rc = write_files(files)) return rc;
  std::cout << "wrote " << files.size() << " files under " << out_dir
            << "\n";
  return 0;
}

// ---- sweep subcommands -----------------------------------------------------

int cmd_sweep_list() {
  Table t({"sweep", "base", "axes", "points", "title"});
  for (const sweep::SweepSpec& spec : sweep::Registry::builtin().all()) {
    std::string axes;
    for (const sweep::Axis& axis : spec.axes) {
      if (!axes.empty()) axes += " x ";
      axes += axis.key + "(" + std::to_string(axis.values.size()) + ")";
    }
    t.row(spec.name, spec.base, axes, spec.point_count(), spec.title);
  }
  t.print(std::cout);
  std::cout << t.rows() << " sweeps. `explsim sweep describe <name>` for "
            << "the grid, `explsim sweep run <name>` to reproduce it.\n";
  return 0;
}

int cmd_sweep_describe(const std::string& name, bool sweep_only) {
  const sweep::SweepSpec* spec = sweep::Registry::builtin().find(name);
  if (!spec) {
    std::cerr << "explsim: no sweep named '" << name << "'\n";
    return 1;
  }
  if (sweep_only) {
    std::cout << spec->to_sweep();
    return 0;
  }
  std::cout << spec->title << "\n\n" << spec->description << "\n\npaper ref: "
            << spec->paper_ref << "\n\n";
  std::string error;
  const auto points = spec->expand(Registry::builtin(), &error);
  if (!points) {
    std::cerr << "explsim: " << error << "\n";
    return 1;
  }
  Table t({"point", "id", "scenario", "seed"});
  for (const sweep::SweepPoint& p : *points)
    t.row(p.index, p.id, p.scenario.name, p.scenario.seed);
  t.print(std::cout);
  std::cout << "\ncanonical .sweep (explsim sweep describe " << name
            << " --sweep > my.sweep):\n\n" << spec->to_sweep();
  return 0;
}

/// A 1-based --shard=I/N selection (1/1 when the flag is absent).
struct ShardArg {
  std::uint32_t index = 1;
  std::uint32_t count = 1;

  bool sharded() const { return count > 1; }
};

/// The canonical shard-checkpoint filename, the naming contract between
/// `sweep all --shard` (writer) and `sweep all --merge-from` (reader).
std::string shard_checkpoint_path(const std::string& dir,
                                  const std::string& sweep_name,
                                  const ShardArg& shard) {
  return dir + "/" + sweep_name + ".shard-" + std::to_string(shard.index) +
         "-of-" + std::to_string(shard.count) + ".ckpt";
}

/// Run one sweep with per-point progress lines; nullopt on error (already
/// printed). The checkpoint is only engaged when a path is supplied.
std::optional<sweep::SweepResult> run_one_sweep(
    const sweep::SweepSpec& spec, std::uint32_t threads,
    const std::string& checkpoint, bool resume, const ShardArg& shard) {
  sweep::SweepRunOptions options;
  options.threads = threads;
  options.checkpoint_path = checkpoint;
  options.resume = resume;
  options.shard_index = shard.index - 1;
  options.shard_count = shard.count;
  const std::size_t total = spec.point_count();
  options.on_point = [&](const sweep::SweepPoint& point,
                         const sweep::PointRecord& record, bool resumed) {
    std::cout << "  [" << point.index + 1 << "/" << total << "] " << point.id
              << ": " << record.successes() << "/" << record.trials.size()
              << (resumed ? " (resumed from checkpoint)" : "") << "\n";
  };
  std::string error;
  auto result =
      sweep::run_sweep(spec, Registry::builtin(), options, &error);
  if (!result) {
    std::cerr << "explsim: " << error << "\n";
    return std::nullopt;
  }
  return result;
}

int cmd_sweep_run(const std::string& operand, std::uint32_t threads,
                  const std::string& out_dir, std::string checkpoint,
                  bool resume, const ShardArg& shard) {
  const auto spec = resolve_sweep(operand);
  if (!spec) return 1;
  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
  }
  if (checkpoint.empty()) {
    const std::string dir = out_dir.empty() ? "." : out_dir;
    checkpoint = shard.sharded()
                     ? shard_checkpoint_path(dir, spec->name, shard)
                     : dir + "/" + spec->name + ".ckpt";
  }
  std::cout << "sweep " << spec->name << ": " << spec->point_count()
            << " points";
  if (shard.sharded())
    std::cout << ", shard " << shard.index << "/" << shard.count;
  std::cout << "\n";
  const auto result = run_one_sweep(*spec, threads, checkpoint, resume, shard);
  if (!result) return 1;
  std::cout << "done in " << result->wall_seconds << " s ("
            << result->resumed_points << " point(s) resumed)\n";
  if (shard.sharded()) {
    // A shard's records cover only its subset: the checkpoint is the
    // deliverable, and reports come from `sweep merge` over all shards.
    std::cout << "shard checkpoint kept at " << checkpoint
              << " — merge all " << shard.count
              << " shards with `explsim sweep merge " << operand
              << " <ckpt...>`\n";
    return 0;
  }
  if (!out_dir.empty()) {
    const std::string md = out_dir + "/" + spec->name + ".md";
    const std::string csv = out_dir + "/" + spec->name + ".csv";
    if (!write_file(md, sweep::sweep_markdown(*result)) ||
        !write_file(csv, sweep::sweep_csv(*result))) {
      std::cerr << "explsim: cannot write reports under '" << out_dir
                << "'\n";
      return 1;
    }
    std::cout << "wrote " << md << " and " << csv << "\n";
  }
  return 0;
}

int cmd_sweep_merge(const std::string& operand,
                    const std::vector<std::string>& checkpoints,
                    const std::string& out_dir) {
  const auto spec = resolve_sweep(operand);
  if (!spec) return 1;
  std::string error;
  const auto result = sweep::merge_checkpoints(*spec, Registry::builtin(),
                                               checkpoints, &error);
  if (!result) {
    std::cerr << "explsim: " << error << "\n";
    return 1;
  }
  std::cout << "merged " << checkpoints.size() << " checkpoint(s): "
            << result->records.size() << "/" << result->points.size()
            << " points of sweep " << spec->name << "\n";
  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    const std::string md = out_dir + "/" + spec->name + ".md";
    const std::string csv = out_dir + "/" + spec->name + ".csv";
    if (!write_file(md, sweep::sweep_markdown(*result)) ||
        !write_file(csv, sweep::sweep_csv(*result))) {
      std::cerr << "explsim: cannot write reports under '" << out_dir
                << "'\n";
      return 1;
    }
    std::cout << "wrote " << md << " and " << csv << "\n";
  }
  return 0;
}

/// Every shard checkpoint for `sweep_name` in `dir`, sorted: the
/// `<name>.shard-I-of-N.ckpt` files `sweep all --shard` writes, plus a
/// plain `<name>.ckpt` (an unsharded checkpoint merges fine too).
std::vector<std::string> find_shard_checkpoints(
    const std::string& dir, const std::string& sweep_name) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string file = entry.path().filename().string();
    if (file.size() < 5 || file.compare(file.size() - 5, 5, ".ckpt") != 0)
      continue;
    if (file == sweep_name + ".ckpt" ||
        file.rfind(sweep_name + ".shard-", 0) == 0)
      paths.push_back(entry.path().generic_string());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

int cmd_sweep_all(const std::string& out_dir, bool check,
                  std::uint32_t threads, bool resume, const ShardArg& shard,
                  const std::string& merge_from) {
  if (shard.sharded() && !merge_from.empty()) {
    std::cerr << "explsim: --shard and --merge-from are mutually exclusive "
              << "(run shards first, then merge)\n";
    return 2;
  }
  if (shard.sharded() && check) {
    std::cerr << "explsim: --check needs a full grid; run every shard, then "
              << "`sweep all --merge-from=DIR --check`\n";
    return 2;
  }

  // Shard mode: run shard I of every registered grid, leaving one
  // checkpoint per grid under out_dir. No reports — those come from the
  // merge step once every shard has run.
  if (shard.sharded()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    for (const sweep::SweepSpec& spec : sweep::Registry::builtin().all()) {
      std::cout << "running " << spec.name << " shard " << shard.index << "/"
                << shard.count << " (" << spec.point_count() << " points)\n";
      const std::string checkpoint =
          shard_checkpoint_path(out_dir, spec.name, shard);
      if (!run_one_sweep(spec, threads, checkpoint, resume, shard)) return 1;
    }
    std::cout << "shard " << shard.index << "/" << shard.count
              << " checkpoints written under " << out_dir << "\n";
    return 0;
  }

  if (!check) {
    // Executing (or merging) writes checkpoints/reports under out_dir.
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
  }
  std::vector<sweep::SweepResult> results;
  for (const sweep::SweepSpec& spec : sweep::Registry::builtin().all()) {
    if (!merge_from.empty()) {
      // Merge mode: reassemble this grid from its shard checkpoints
      // instead of executing anything.
      const auto checkpoints = find_shard_checkpoints(merge_from, spec.name);
      std::cout << (check ? "checking " : "merging ") << spec.name << " from "
                << checkpoints.size() << " checkpoint(s)\n";
      std::string error;
      auto result = sweep::merge_checkpoints(spec, Registry::builtin(),
                                             checkpoints, &error);
      if (!result) {
        std::cerr << "explsim: " << error << "\n";
        return 1;
      }
      results.push_back(std::move(*result));
      continue;
    }
    std::cout << (check ? "checking " : "running ") << spec.name << " ("
              << spec.point_count() << " points)\n";
    // --check must not leave state behind; otherwise checkpoint next to
    // the outputs so a killed regeneration resumes with --resume.
    const std::string checkpoint =
        check ? std::string() : out_dir + "/" + spec.name + ".ckpt";
    auto result = run_one_sweep(spec, threads, checkpoint, resume, shard);
    if (!result) return 1;
    results.push_back(std::move(*result));
  }
  const auto files = sweep::sweep_files(results, out_dir);

  if (check)
    return finish_check(sweep::check_generated_files(files, out_dir),
                        files.size(), "explsim sweep all");
  if (const int rc = write_files(files)) return rc;
  std::cout << "wrote " << files.size() << " files under " << out_dir
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  std::string command = argv[1];
  int first_option = 2;
  const bool is_sweep = command == "sweep";
  if (is_sweep) {
    if (argc < 3) return usage(std::cerr, 2);
    command = argv[2];
    first_option = 3;
  }

  std::vector<std::string> operands;
  bool scn_only = false;
  bool sweep_only = false;
  bool check = false;
  bool resume = false;
  std::uint32_t threads = 0;
  std::uint32_t trial = 0;
  std::string out_dir;
  std::string checkpoint;
  std::string merge_from;
  ShardArg shard;
  for (int i = first_option; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scn") {
      scn_only = true;
    } else if (arg == "--sweep") {
      sweep_only = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      const std::string value = arg.substr(std::strlen("--threads="));
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || parsed == 0 || parsed > 256) {
        std::cerr << "explsim: bad --threads value '" << value
                  << "' (want 1..256)\n";
        return 2;
      }
      threads = static_cast<std::uint32_t>(parsed);
    } else if (arg.rfind("--trial=", 0) == 0) {
      const std::string value = arg.substr(std::strlen("--trial="));
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || parsed > 1'000'000) {
        std::cerr << "explsim: bad --trial value '" << value << "'\n";
        return 2;
      }
      trial = static_cast<std::uint32_t>(parsed);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_dir = arg.substr(std::strlen("--out="));
    } else if (arg.rfind("--checkpoint=", 0) == 0) {
      checkpoint = arg.substr(std::strlen("--checkpoint="));
    } else if (arg.rfind("--merge-from=", 0) == 0) {
      merge_from = arg.substr(std::strlen("--merge-from="));
    } else if (arg.rfind("--shard=", 0) == 0) {
      // --shard=I/N, 1-based: shard I of N round-robin shards.
      const std::string value = arg.substr(std::strlen("--shard="));
      const std::size_t slash = value.find('/');
      bool ok = slash != std::string::npos;
      unsigned long index = 0;
      unsigned long count = 0;
      if (ok) {
        char* end = nullptr;
        const std::string i_text = value.substr(0, slash);
        const std::string n_text = value.substr(slash + 1);
        index = std::strtoul(i_text.c_str(), &end, 10);
        ok = !i_text.empty() && *end == '\0';
        if (ok) {
          count = std::strtoul(n_text.c_str(), &end, 10);
          ok = !n_text.empty() && *end == '\0';
        }
      }
      if (!ok || count == 0 || count > 1024 || index == 0 || index > count) {
        std::cerr << "explsim: bad --shard value '" << value
                  << "' (want I/N with 1 <= I <= N <= 1024)\n";
        return 2;
      }
      shard.index = static_cast<std::uint32_t>(index);
      shard.count = static_cast<std::uint32_t>(count);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "explsim: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      operands.push_back(arg);
    }
  }

  if (is_sweep) {
    if (command == "list" && operands.empty()) return cmd_sweep_list();
    if (command == "describe" && operands.size() == 1)
      return cmd_sweep_describe(operands[0], sweep_only);
    if (command == "run" && operands.size() == 1)
      return cmd_sweep_run(operands[0], threads, out_dir, checkpoint, resume,
                           shard);
    if (command == "merge" && operands.size() >= 2)
      return cmd_sweep_merge(
          operands[0],
          std::vector<std::string>(operands.begin() + 1, operands.end()),
          out_dir);
    if (command == "all" && operands.empty())
      return cmd_sweep_all(
          out_dir.empty() ? "docs/results/sweeps" : out_dir, check, threads,
          resume, shard, merge_from);
    return usage(std::cerr, 2);
  }

  if (command == "list" && operands.empty()) return cmd_list();
  if (command == "describe" && operands.size() == 1)
    return cmd_describe(operands[0], scn_only);
  if (command == "run" && operands.size() == 1)
    return cmd_run(operands[0], threads, out_dir);
  if (command == "debug" && operands.size() == 1)
    return cmd_debug(operands[0], trial);
  if (command == "all" && operands.empty())
    return cmd_all(out_dir.empty() ? "docs/results" : out_dir, check,
                   threads);
  if (command == "help" || command == "--help") return usage(std::cout, 0);
  return usage(std::cerr, 2);
}
