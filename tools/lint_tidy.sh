#!/bin/sh
# clang-tidy gate over src/ and tools/ (run by CI and tools/lint_all.sh).
#
# Uses the repo's .clang-tidy (curated check set, warnings-as-errors) and
# the compile database a configured build tree exports
# (CMAKE_EXPORT_COMPILE_COMMANDS is always on). Two parts:
#
#   1. NOLINT hygiene (always runs, no clang-tidy needed): every NOLINT
#      in src/ or tools/ must name a specific check — NOLINT(<check>) —
#      and carry a reason on the same line. A bare NOLINT is an
#      undocumented suppression and fails the gate.
#   2. clang-tidy itself over every src/ and tools/ translation unit.
#      Skipped with a notice (exit 0) when clang-tidy is not installed,
#      so the gate degrades gracefully on minimal dev images; the CI leg
#      installs clang-tidy and always runs it.
#
# Usage: tools/lint_tidy.sh [build-dir]   (default: build)
set -u

cd "$(dirname "$0")/.." || exit 2
build_dir="${1:-build}"

# ---- Part 1: NOLINT hygiene -------------------------------------------------
status=0
bad_nolints=$(grep -rn "NOLINT" src tools --include='*.cpp' --include='*.hpp' \
                 2>/dev/null | grep -v '^tools/fixtures/' |
              grep -vE 'NOLINT(NEXTLINE)?\([a-z0-9.-]+\).*[A-Za-z]{4,}') || true
if [ -n "$bad_nolints" ]; then
  echo "undocumented NOLINT (must be NOLINT(<check>) with a reason):" >&2
  printf '%s\n' "$bad_nolints" >&2
  status=1
fi

# ---- Part 2: clang-tidy -----------------------------------------------------
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint_tidy: clang-tidy not installed — NOLINT hygiene only" \
       "(CI runs the full gate)"
  exit $status
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "lint_tidy: $build_dir/compile_commands.json missing —" \
       "configure a build tree first (cmake -B $build_dir -S .)" >&2
  exit 1
fi

files=$(find src tools -name '*.cpp' | grep -v '^tools/fixtures/' | sort)
jobs=$(nproc 2>/dev/null || echo 2)
# xargs fans the translation units out; any finding is an error
# (WarningsAsErrors: '*' in .clang-tidy) and fails the pipeline.
if ! printf '%s\n' "$files" |
     xargs -P "$jobs" -n 4 clang-tidy -p "$build_dir" --quiet; then
  echo "clang-tidy gate failed (see findings above)" >&2
  status=1
else
  echo "clang-tidy gate: OK ($(printf '%s\n' "$files" | wc -l) files)"
fi
exit $status
