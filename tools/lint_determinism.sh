#!/bin/sh
# Determinism lint, warnings-as-errors (run by CI and tools/lint_all.sh).
#
# Everything this repo publishes — golden reports, sweep grids, checkpoint
# records, snapshot replays — is promised to be bit-identical across runs,
# machines and thread counts. This lint statically forbids the constructs
# that break that promise in src/ and tools/:
#
#   wall-clock      std::chrono::system_clock / high_resolution_clock,
#                   time(), clock(), gettimeofday, clock_gettime,
#                   localtime/gmtime: calendar or host time can never feed
#                   simulation state or emitted bytes. No escapes.
#   steady-clock    std::chrono::steady_clock: legal ONLY for wall-clock
#                   diagnostics that byte-stable emitters exclude (e.g.
#                   template_wall_seconds), and each site must carry an
#                   annotated escape saying so (syntax below).
#   ambient-rng     rand()/srand(), std::random_device, std::mt19937 &
#                   friends outside src/support/rng.*: all randomness must
#                   flow from explicitly seeded support/rng streams.
#   unordered-emit  any unordered container in the byte-stable emitter
#                   translation units (src/*/report.*, src/support/table.*)
#                   or in the packed DRAM-state units whose iteration order
#                   feeds emitted bytes (src/support/packed.*,
#                   src/dram/weak_cells.*, src/dram/packed_state.*: the
#                   sorted arena defines vulnerable_rows() and flip-log
#                   emit order): unordered iteration order is not part of
#                   the contract, so these units must use ordered
#                   containers end to end.
#   uninit-seed     a seed member declared without an initializer: every
#                   seed has a defined default, or replay depends on
#                   whatever the stack held.
#
# Escape syntax (same line, or the line immediately above the finding):
#
#   // determinism: allow(<rule>) <reason>
#
# The reason is mandatory; an escape with an empty reason is itself an
# error. Only `steady-clock` escapes are honoured — the other rules have
# no legitimate sites by design (add one here only with a design change).
#
# Usage:
#   tools/lint_determinism.sh               lint src/ and tools/
#   tools/lint_determinism.sh --self-test   run against the committed
#                                           negative fixture and REQUIRE
#                                           every rule to fire (proves the
#                                           lint still detects what it
#                                           claims to detect)
set -u

cd "$(dirname "$0")/.." || exit 2

scan() {
  # scan <file> — prints findings, returns non-zero if any.
  f="$1"
  awk -v file="$f" '
    function is_emitter(path) {
      # The byte-stable emitter units (scenario/sweep report + table), the
      # packed DRAM-state units whose iteration order reaches emitted
      # bytes (sorted weak-cell arena -> vulnerable_rows() and flip-log
      # order), and the self-test fixture standing in for them.
      return (path ~ /^src\/[a-z]+\/report\.(cpp|hpp)$/ ||
              path ~ /^src\/support\/table\.(cpp|hpp)$/ ||
              path ~ /^src\/support\/packed\.(cpp|hpp)$/ ||
              path ~ /^src\/dram\/(weak_cells|packed_state)\.(cpp|hpp)$/ ||
              path ~ /^tools\/fixtures\/report\.cpp$/)
    }
    function escape_rule(line) {
      if (match(line, /\/\/ determinism: allow\([a-z-]+\)/)) {
        s = substr(line, RSTART, RLENGTH)
        sub(/^\/\/ determinism: allow\(/, "", s); sub(/\)$/, "", s)
        return s
      }
      return ""
    }
    function escape_reason(line) {
      sub(/^.*\/\/ determinism: allow\([a-z-]+\)[[:space:]]*/, "", line)
      return line
    }
    function flag(rule, what,   er, src) {
      # Honour an escape on this line or the previous line.
      er = escape_rule($0); src = $0
      if (er == "") { er = escape_rule(prev); src = prev }
      if (er == rule && rule == "steady-clock") {
        if (escape_reason(src) == "") {
          printf "%s:%d: error: determinism escape for %s has no reason\n",
                 file, NR, rule
          bad = 1
        }
        return
      }
      if (er != "" && er != rule) {
        printf "%s:%d: error: escape names rule %s but finding is %s\n",
               file, NR, er, rule
        bad = 1
        return
      }
      if (er == rule) {
        printf "%s:%d: error: rule %s does not accept escapes\n",
               file, NR, rule
        bad = 1
        return
      }
      printf "%s:%d: error: [%s] %s\n", file, NR, rule, what
      bad = 1
    }
    # Strip line comments for matching so the lint never fires on prose —
    # but keep the raw line for escape handling.
    {
      code = $0
      sub(/\/\/.*$/, "", code)
    }
    code ~ /system_clock|high_resolution_clock|gettimeofday|clock_gettime|localtime|gmtime/ {
      flag("wall-clock", "host calendar/cpu time is forbidden: " $0)
    }
    code ~ /[^a-zA-Z0-9_](time|clock)[[:space:]]*\(/ {
      flag("wall-clock", "host calendar/cpu time is forbidden: " $0)
    }
    code ~ /steady_clock/ {
      flag("steady-clock",
           "monotonic clock needs an annotated escape (diagnostic-only): " $0)
    }
    code ~ /[^a-zA-Z0-9_](rand|srand)[[:space:]]*\(|random_device|mt19937|default_random_engine|minstd_rand/ {
      if (file !~ /src\/support\/rng\.(cpp|hpp)$/)
        flag("ambient-rng",
             "randomness outside support/rng is forbidden: " $0)
    }
    code ~ /unordered_(map|set|multimap|multiset)/ && is_emitter(file) {
      flag("unordered-emit",
           "unordered container in a byte-stable emitter: " $0)
    }
    # A seed data member with no initializer: "std::uint64_t seed;" or
    # "uint64_t noise_seed_;" — function declarations (have parens) and
    # initialized members are fine.
    code ~ /(uint64_t|uint32_t|size_t)[[:space:]]+[a-zA-Z0-9_]*seed[a-zA-Z0-9_]*_?[[:space:]]*;/ &&
    code !~ /[(=)]/ && file ~ /\.hpp$/ {
      flag("uninit-seed", "seed member declared without an initializer: " $0)
    }
    { prev = $0 }
    END { exit bad }
  ' "$f"
}

if [ "${1:-}" = "--self-test" ]; then
  # The committed negative fixture must trip EVERY rule — if a rewrite of
  # the patterns above stops detecting a class of violation, this mode
  # fails CI even though src/ itself is clean.
  out=$( { scan "tools/fixtures/determinism_bad.cpp"
           scan "tools/fixtures/determinism_bad.hpp"
           scan "tools/fixtures/report.cpp"; } 2>&1 )
  status=0
  for rule in wall-clock steady-clock ambient-rng unordered-emit uninit-seed; do
    if ! printf '%s\n' "$out" | grep -q "\[$rule\]"; then
      echo "self-test: rule $rule did NOT fire on the negative fixture" >&2
      status=1
    fi
  done
  # The fixture also carries a malformed escape (no reason) and a
  # wrong-rule escape; both must be rejected.
  printf '%s\n' "$out" | grep -q "has no reason" || {
    echo "self-test: reason-less escape was not rejected" >&2; status=1; }
  printf '%s\n' "$out" | grep -q "does not accept escapes" || {
    echo "self-test: non-escapable rule accepted an escape" >&2; status=1; }
  if [ "$status" -eq 0 ]; then
    echo "determinism lint self-test: OK (all rules fire on the fixture)"
  fi
  exit $status
fi

status=0
for f in $(find src tools -name '*.cpp' -o -name '*.hpp' | grep -v '^tools/fixtures/' | sort); do
  scan "$f" || status=1
done

if [ "$status" -ne 0 ]; then
  echo "determinism lint failed (see errors above)" >&2
else
  echo "determinism lint: OK"
fi
exit $status
