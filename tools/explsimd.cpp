// explsimd — the long-running experiment daemon over a spool directory.
//
//   explsimd serve  [--spool=DIR] [--workers=N] [--once]
//   explsimd submit <scenario|sweep> <name> [--spool=DIR] [--threads=N]
//   explsimd status [<id>] [--spool=DIR]
//   explsimd report <id> [--csv] [--spool=DIR]
//
// The daemon speaks the one-line service::protocol format over files:
// `submit` resolves a request to its content-bound job id and drops
// `<spool>/queue/<id>.req` (tmp + rename, so a crash never leaves a torn
// submission); a running `serve` polls the queue directory, dedupes by
// id, and executes jobs on a bounded worker pool, writing reports into
// `<spool>/done/` and filing exhausted retries under `<spool>/failed/`.
// Because both sides meet only in the filesystem, submissions survive
// daemon restarts: `serve` rescans the queue on startup and sweep jobs
// resume from `<spool>/checkpoints/<id>.ckpt` instead of recomputing.
//
// `serve --once` drains the queue and exits (the CI/integration mode);
// without it the daemon polls until SIGINT/SIGTERM, then shuts down
// gracefully — in-flight sweeps stop at the next point boundary and keep
// their checkpoint, so nothing is lost and nothing is rerun.
//
// `status` and `report` need no daemon: job state is fully determined by
// which spool file holds the id (queue/ = pending, done/ = completed,
// failed/ = gave up), so they just look.
//
// Exit codes (scriptable — each failure class is distinguishable):
//   0  success
//   1  job failed (a failed/ entry, or `serve --once` saw failures)
//   2  bad request (usage, unknown kind/name/id, malformed input)
//   3  spool unavailable (cannot create/write the spool, or the daemon
//      is degraded read-only after a permanent disk failure)
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "io/fs.hpp"
#include "scenario/registry.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "support/config.hpp"
#include "sweep/registry.hpp"

using namespace explframe;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_stop_signal(int) { g_stop = 1; }

// The failure-class exit codes (see the file comment).
constexpr int kExitJobFailed = 1;
constexpr int kExitBadRequest = 2;
constexpr int kExitUnavailable = 3;

int usage(std::ostream& os, int code) {
  os << "usage: explsimd <command> [options]\n"
        "\n"
        "  serve                     run the daemon over the spool\n"
        "      [--spool=DIR]         spool root (default: explsimd-spool)\n"
        "      [--workers=N]         worker threads (default 2)\n"
        "      [--once]              drain the queued jobs and exit\n"
        "                            (non-zero if any job failed)\n"
        "  submit <scenario|sweep> <name>\n"
        "                            spool one job; prints its id. The id\n"
        "                            binds the experiment's content, so\n"
        "                            duplicate submissions collapse and a\n"
        "                            completed job is served from cache\n"
        "      [--threads=N]         inner worker threads (wall-clock only)\n"
        "      [--spool=DIR]\n"
        "  status [<id>]             one job's state, or every spooled job\n"
        "                            (failed jobs print their recorded\n"
        "                            failure reason)\n"
        "      [--spool=DIR]\n"
        "  report <id> [--csv]       print a completed job's report bytes\n"
        "      [--spool=DIR]\n"
        "\n"
        "exit codes: 0 ok, 1 job failed, 2 bad request, 3 spool\n"
        "unavailable/degraded\n";
  return code;
}

std::optional<std::string> read_file(const std::string& path) {
  std::string content;
  if (!io::real().read_file(path, &content).ok()) return std::nullopt;
  return content;
}

/// The spool-derived state of an id: which directory holds it.
std::string spool_state(const std::string& spool, const std::string& id) {
  namespace fs = std::filesystem;
  if (fs::exists(spool + "/done/" + id + ".md")) return "done";
  if (fs::exists(spool + "/failed/" + id + ".err")) return "failed";
  if (fs::exists(spool + "/queue/" + id + ".req")) return "queued";
  return "unknown";
}

int cmd_serve(const std::string& spool, std::uint32_t workers, bool once) {
  service::ServiceOptions options;
  options.spool_dir = spool;
  options.workers = workers;
  service::Service daemon(options, scenario::Registry::builtin(),
                          sweep::Registry::builtin());
  std::string error;
  if (!daemon.start(&error)) {
    std::cerr << "error: " << error << "\n";
    return kExitUnavailable;
  }

  if (!once) {
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    std::cout << "explsimd: serving spool '" << spool << "' with " << workers
              << " worker(s); SIGINT/SIGTERM drains gracefully\n";
    namespace fs = std::filesystem;
    while (!g_stop) {
      // Pick up submissions dropped by other processes. Dedupe makes the
      // rescan idempotent, so re-seeing a tracked .req costs nothing.
      for (const auto& entry : fs::directory_iterator(spool + "/queue")) {
        if (entry.path().extension() != ".req") continue;
        const std::string id = entry.path().stem().string();
        if (daemon.status(id)) continue;
        const auto text = read_file(entry.path().string());
        if (!text) continue;
        std::string line = *text;
        while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
          line.pop_back();
        std::string submit_error;
        service::SubmitError why = service::SubmitError::kNone;
        if (!daemon.submit_line(line, &submit_error, &why)) {
          if (why == service::SubmitError::kUnavailable) {
            // The request is fine — the spool is not. Leave the .req in
            // place (it is already durable) and keep serving reads.
            std::cerr << "explsimd: degraded, cannot accept '"
                      << entry.path().string() << "': " << submit_error
                      << "\n";
            continue;
          }
          std::cerr << "explsimd: rejecting '" << entry.path().string()
                    << "': " << submit_error << "\n";
          std::error_code ec;
          fs::rename(entry.path(),
                     fs::path(entry.path().string() + ".rejected"), ec);
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::cout << "explsimd: stopping (in-flight sweeps cancel at the next "
                 "point boundary; checkpoints are kept for resume)\n";
    daemon.shutdown(service::Service::Shutdown::kCancel);
  } else {
    daemon.drain();
    daemon.shutdown(service::Service::Shutdown::kDrain);
  }

  int failed = 0;
  for (const service::Job& job : daemon.jobs()) {
    std::cout << job.id << " " << to_string(job.state) << " attempts="
              << job.attempts << " requeues=" << job.requeues;
    if (!job.error.empty()) std::cout << " error: " << job.error;
    std::cout << "\n";
    if (job.state == service::JobState::kFailed) failed += 1;
  }
  std::cout << "explsimd: " << daemon.executions() << " execution(s), "
            << failed << " failed\n";
  if (daemon.degraded()) {
    std::cerr << "explsimd: spool degraded (read-only): "
              << daemon.degraded_reason() << "\n";
    return kExitUnavailable;
  }
  return once && failed > 0 ? kExitJobFailed : 0;
}

int cmd_submit(const std::string& spool, const std::string& kind_name,
               const std::string& name, std::uint32_t threads) {
  const auto kind = service::job_kind_from_string(kind_name);
  if (!kind) {
    std::cerr << "error: unknown kind '" << kind_name
              << "' (want scenario or sweep)\n";
    return kExitBadRequest;
  }
  service::JobRequest request;
  request.kind = *kind;
  request.name = name;
  request.threads = threads;
  std::string error;
  const auto id = service::job_id(request, scenario::Registry::builtin(),
                                  sweep::Registry::builtin(), &error);
  if (!id) {
    // An unknown scenario/sweep name is the submitter's mistake, not the
    // spool's.
    std::cerr << "error: " << error << "\n";
    return kExitBadRequest;
  }
  io::FileSystem& fs = io::real();
  if (fs.exists(spool + "/done/" + *id + ".md")) {
    std::cout << *id << " cached\n";
    return 0;
  }
  const io::Status made = io::with_retry(io::kDefaultRetryAttempts, [&] {
    return fs.create_directories(spool + "/queue");
  });
  if (!made.ok()) {
    std::cerr << "error: cannot create spool '" << spool
              << "/queue': " << made.message() << "\n";
    return kExitUnavailable;
  }
  const std::string path = spool + "/queue/" + *id + ".req";
  const bool duplicate = fs.exists(path);
  // The same tmp + sync + rename discipline Service uses, so a
  // concurrently polling daemon never reads a half-written request and a
  // crash never loses an acknowledged submission.
  const io::Status spooled =
      io::durable_write(fs, path, request.serialize() + "\n");
  if (!spooled.ok()) {
    std::cerr << "error: cannot write '" << path
              << "': " << spooled.message() << "\n";
    return kExitUnavailable;
  }
  std::cout << *id << (duplicate ? " deduped" : " submitted") << "\n";
  return 0;
}

int cmd_status(const std::string& spool, const std::string& id) {
  namespace fs = std::filesystem;
  if (!id.empty()) {
    const std::string state = spool_state(spool, id);
    std::cout << id << " " << state << "\n";
    if (state == "failed") {
      if (const auto why = read_file(spool + "/failed/" + id + ".err"))
        std::cout << "  " << trim_copy(*why) << "\n";
      return kExitJobFailed;
    }
    return state == "unknown" ? kExitBadRequest : 0;
  }
  // Every id the spool knows, each printed once, stable order.
  std::vector<std::string> ids;
  const auto collect = [&](const std::string& sub, const std::string& ext) {
    std::error_code ec;
    for (const auto& entry :
         fs::directory_iterator(spool + "/" + sub, ec)) {
      if (entry.path().extension() != ext) continue;
      const std::string found = entry.path().stem().string();
      bool seen = false;
      for (const std::string& existing : ids) seen = seen || existing == found;
      if (!seen) ids.push_back(found);
    }
  };
  collect("queue", ".req");
  collect("done", ".md");
  collect("failed", ".err");
  std::sort(ids.begin(), ids.end());
  for (const std::string& found : ids) {
    const std::string state = spool_state(spool, found);
    std::cout << found << " " << state << "\n";
    if (state == "failed") {
      // Surface the recorded reason right in the listing, so "why did my
      // job fail" never needs a manual dig through failed/.
      if (const auto why = read_file(spool + "/failed/" + found + ".err"))
        std::cout << "  " << trim_copy(*why) << "\n";
    }
  }
  return 0;
}

int cmd_report(const std::string& spool, const std::string& id, bool csv) {
  const std::string path =
      spool + "/done/" + id + "." + (csv ? "csv" : "md");
  const auto text = read_file(path);
  if (!text) {
    const std::string state = spool_state(spool, id);
    std::cerr << "error: no completed report at '" << path
              << "' (status: " << state << ")\n";
    if (state == "failed") {
      if (const auto why = read_file(spool + "/failed/" + id + ".err"))
        std::cerr << "  " << trim_copy(*why) << "\n";
      return kExitJobFailed;
    }
    return kExitBadRequest;
  }
  std::cout << *text;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage(std::cerr, 2);

  std::string spool = "explsimd-spool";
  std::uint32_t workers = 2;
  std::uint32_t threads = 0;
  bool once = false;
  bool csv = false;
  std::vector<std::string> operands;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--spool=", 0) == 0) {
      spool = arg.substr(8);
    } else if (arg.rfind("--workers=", 0) == 0) {
      const auto value = parse_u64(arg.substr(10));
      if (!value || *value == 0 || *value > 64) {
        std::cerr << "error: bad --workers value (want 1..64)\n";
        return 2;
      }
      workers = static_cast<std::uint32_t>(*value);
    } else if (arg.rfind("--threads=", 0) == 0) {
      const auto value = parse_u64(arg.substr(10));
      if (!value || *value > 256) {
        std::cerr << "error: bad --threads value (want 0..256)\n";
        return 2;
      }
      threads = static_cast<std::uint32_t>(*value);
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "error: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      operands.push_back(arg);
    }
  }

  const std::string& command = args[0];
  if (command == "serve" && operands.empty())
    return cmd_serve(spool, workers, once);
  if (command == "submit" && operands.size() == 2)
    return cmd_submit(spool, operands[0], operands[1], threads);
  if (command == "status" && operands.size() <= 1)
    return cmd_status(spool, operands.empty() ? "" : operands[0]);
  if (command == "report" && operands.size() == 1)
    return cmd_report(spool, operands[0], csv);
  if (command == "--help" || command == "-h") return usage(std::cout, 0);
  return usage(std::cerr, 2);
}
