// Negative fixture (emitter half) for tools/lint_determinism.sh
// --self-test: named report.cpp so the unordered-emit rule treats it as a
// byte-stable emitter translation unit. Never compiled, never linted as
// product code.
#include <string>
#include <unordered_map>

namespace fixture {

// [unordered-emit] iteration order of an unordered container is not part
// of the byte-stability contract; emitters must use ordered containers.
inline std::string bad_emit(
    const std::unordered_map<std::string, int>& stages) {
  std::string out;
  for (const auto& [stage, count] : stages)
    out += stage + "=" + std::to_string(count) + "\n";
  return out;
}

}  // namespace fixture
