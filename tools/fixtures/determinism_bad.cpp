// Negative fixture for tools/lint_determinism.sh --self-test.
//
// NEVER compiled (the tools/ CMake glob is non-recursive) and NEVER
// linted as product code (the lint's file walk excludes tools/fixtures/).
// Every determinism rule must fire on this file; the self-test fails CI
// if one stops detecting its violation class. Keep one example per rule,
// plus the two malformed-escape cases.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

// [wall-clock] calendar time can never reach simulation state.
inline long bad_wall_clock() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

// [wall-clock] C time() is the same violation through the C library.
inline long bad_c_time() { return time(nullptr); }

// [steady-clock] monotonic clock WITHOUT the mandatory annotated escape.
inline long bad_steady_clock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

// A correct escape: annotated, with a reason — must NOT be flagged.
inline long ok_steady_clock() {
  // determinism: allow(steady-clock) wall-seconds diagnostic, never emitted
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

// A malformed escape: right rule, no reason — must be rejected.
inline long bad_escape_no_reason() {
  // determinism: allow(steady-clock)
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

// A forbidden escape: wall-clock has no legitimate sites by design.
inline long bad_escape_wrong_rule() {
  return clock();  // determinism: allow(wall-clock) not allowed at all
}

// [ambient-rng] randomness outside support/rng.
inline int bad_rand() { return rand(); }
inline unsigned bad_random_device() { return std::random_device{}(); }
inline unsigned bad_mt19937() { return std::mt19937{42}(); }

// [uninit-seed] lives in determinism_bad_header.hpp (rule is .hpp-only).

}  // namespace fixture
