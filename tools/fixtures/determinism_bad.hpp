// Negative fixture (header half) for tools/lint_determinism.sh --self-test:
// the uninit-seed rule only applies to headers, where seed members live.
// Never compiled, never linted as product code.
#pragma once

#include <cstdint>

namespace fixture {

struct BadConfig {
  // [uninit-seed] replay would depend on uninitialized memory.
  std::uint64_t seed;
  std::uint32_t noise_seed_;

  // Initialized seeds and seed accessors must NOT be flagged.
  std::uint64_t good_seed = 1;
  std::uint64_t seed_of() const noexcept { return good_seed; }
};

}  // namespace fixture
