#!/bin/sh
# Header-documentation lint, warnings-as-errors (run by CI).
#
# For every public header under src/ — every layer is documented now —
# enforce:
#
#   (a) the file starts with a file-level '//' comment block on line 1;
#   (b) every class / struct / enum *definition* is immediately preceded
#       by a comment line (Doxygen-style '///' or a '//' block) — forward
#       declarations ('class Foo;') are exempt;
#   (c) every public member-function declaration group is preceded by a
#       comment or a '// ----' section banner (checked loosely: a public:
#       section must contain at least one comment line).
#
# Exit status is non-zero on any violation, with file:line diagnostics.
set -u

cd "$(dirname "$0")/.." || exit 2

status=0
for f in src/attack/*.hpp src/io/*.hpp src/scenario/*.hpp \
         src/service/*.hpp src/snapshot/*.hpp src/sweep/*.hpp \
         src/support/*.hpp src/crypto/*.hpp src/dram/*.hpp src/fault/*.hpp \
         src/kernel/*.hpp src/mm/*.hpp src/vm/*.hpp; do
  [ -f "$f" ] || continue
  awk -v file="$f" '
    NR == 1 && $0 !~ /^\/\// {
      printf "%s:1: error: missing file-level comment\n", file; bad = 1
    }
    # A type definition (not a forward declaration, not a data member of
    # type "struct X" etc.): class/struct/enum name ... not ending in ";".
    /^[[:space:]]*(class|struct|enum class|enum)[[:space:]]+[A-Za-z_][A-Za-z0-9_]*([[:space:]]*[:{]|[[:space:]]*$)/ {
      if (prev !~ /^[[:space:]]*\/\// && prev !~ /\*\/[[:space:]]*$/) {
        printf "%s:%d: error: undocumented type: %s\n", file, NR, $0
        bad = 1
      }
    }
    /^[[:space:]]*public:/ { in_public = 1; public_line = NR; saw_doc = 0 }
    /^[[:space:]]*(private|protected):/ { in_public = 0 }
    in_public && /^[[:space:]]*\/\// { saw_doc = 1 }
    /^};[[:space:]]*$/ {
      if (in_public && !saw_doc && NR > public_line + 2) {
        printf "%s:%d: error: public section without any documentation\n",
               file, public_line
        bad = 1
      }
      in_public = 0
    }
    { prev = $0 }
    END { exit bad }
  ' "$f" || status=1
done

if [ "$status" -ne 0 ]; then
  echo "header-doc lint failed (see errors above)" >&2
else
  echo "header-doc lint: OK"
fi
exit $status
